//! Area, power and peak-performance model (Table IV).
//!
//! The paper implements MACO in a 12 nm ASIC flow and reports, per unit:
//! frequency, area, power, FMAC count and theoretical peak. The figures are
//! static design parameters, so the reproduction models them as constants
//! and *derives* the paper's headline ratios: the MMAE is ~25 % of the CPU
//! core's area yet delivers >2× its peak, i.e. ~9× the area efficiency and
//! ~2× the power efficiency.

use std::fmt;

use maco_isa::Precision;

/// Physical characteristics of one unit (CPU core or MMAE).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnitPhysical {
    /// Name for reports.
    pub name: &'static str,
    /// Clock frequency in GHz.
    pub freq_ghz: f64,
    /// Area in mm² (12 nm, post-P&R).
    pub area_mm2: f64,
    /// Power in watts.
    pub power_w: f64,
    /// Fused MAC units.
    pub fmacs: u32,
    /// SIMD lanes per FMAC at each precision (FP64, FP32, FP16, INT8);
    /// zero means the precision is unsupported.
    pub lanes: [u32; 4],
}

impl UnitPhysical {
    /// Theoretical peak in GFLOPS (GOPS for INT8) at `precision`
    /// (`2 × freq × FMACs × lanes`, Table IV note a).
    pub fn peak_gflops(&self, precision: Precision) -> Option<f64> {
        let lanes = match precision {
            Precision::Fp64 => self.lanes[0],
            Precision::Fp32 => self.lanes[1],
            Precision::Fp16 => self.lanes[2],
            Precision::Int8 => self.lanes[3],
        };
        if lanes == 0 {
            None
        } else {
            Some(2.0 * self.freq_ghz * self.fmacs as f64 * lanes as f64)
        }
    }

    /// GFLOPS per mm² at `precision`.
    pub fn area_efficiency(&self, precision: Precision) -> Option<f64> {
        self.peak_gflops(precision).map(|p| p / self.area_mm2)
    }

    /// GFLOPS per watt at `precision`.
    pub fn power_efficiency(&self, precision: Precision) -> Option<f64> {
        self.peak_gflops(precision).map(|p| p / self.power_w)
    }
}

/// MMAE area breakdown from Table IV note b (percent).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MmaeAreaBreakdown {
    /// On-chip buffers.
    pub buffers_pct: f64,
    /// Systolic array.
    pub sa_pct: f64,
    /// Accelerator controller.
    pub ac_pct: f64,
    /// Accelerator data engine.
    pub ade_pct: f64,
}

/// The Table IV model for one compute node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhysicalModel {
    /// The CPU core row.
    pub cpu: UnitPhysical,
    /// The MMAE row.
    pub mmae: UnitPhysical,
    /// MMAE area breakdown.
    pub breakdown: MmaeAreaBreakdown,
}

impl Default for PhysicalModel {
    fn default() -> Self {
        PhysicalModel {
            cpu: UnitPhysical {
                name: "CPU",
                freq_ghz: 2.2,
                area_mm2: 6.25,
                power_w: 2.0,
                fmacs: 8,
                // The CPU core has neither FP16 nor INT8 dot units.
                lanes: [1, 2, 0, 0],
            },
            mmae: UnitPhysical {
                name: "MMAE",
                freq_ghz: 2.5,
                area_mm2: 1.58,
                power_w: 1.5,
                fmacs: 16,
                // INT8 packs eight lanes per PE datapath (640 GOPS peak).
                lanes: [1, 2, 4, 8],
            },
            breakdown: MmaeAreaBreakdown {
                buffers_pct: 36.7,
                sa_pct: 24.7,
                ac_pct: 23.4,
                ade_pct: 15.8,
            },
        }
    }
}

impl PhysicalModel {
    /// MMAE area as a fraction of CPU area (the paper's "only 25 %").
    pub fn area_ratio(&self) -> f64 {
        self.mmae.area_mm2 / self.cpu.area_mm2
    }

    /// MMAE-vs-CPU area-efficiency ratio at `precision` (the paper's ~9×,
    /// quoted at FP64).
    pub fn area_efficiency_gain(&self, precision: Precision) -> Option<f64> {
        Some(self.mmae.area_efficiency(precision)? / self.cpu.area_efficiency(precision)?)
    }

    /// MMAE-vs-CPU power-efficiency ratio at `precision` (the paper's ~2×).
    pub fn power_efficiency_gain(&self, precision: Precision) -> Option<f64> {
        Some(self.mmae.power_efficiency(precision)? / self.cpu.power_efficiency(precision)?)
    }

    /// Total node area (CPU + MMAE).
    pub fn node_area_mm2(&self) -> f64 {
        self.cpu.area_mm2 + self.mmae.area_mm2
    }
}

impl fmt::Display for PhysicalModel {
    /// Renders the Table IV layout.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<6} {:>6} {:>8} {:>7} {:>6}  Peak Perf (GFLOPS)",
            "", "Freq", "Area", "Power", "FMACs"
        )?;
        writeln!(
            f,
            "{:<6} {:>5}G {:>7.2} {:>6.1}W {:>6}  {}",
            self.cpu.name,
            self.cpu.freq_ghz,
            self.cpu.area_mm2,
            self.cpu.power_w,
            self.cpu.fmacs,
            format_args!(
                "{:.1}(FP64)/{:.0}(FP32)",
                self.cpu.peak_gflops(Precision::Fp64).unwrap_or(0.0),
                self.cpu.peak_gflops(Precision::Fp32).unwrap_or(0.0)
            )
        )?;
        writeln!(
            f,
            "{:<6} {:>5}G {:>7.2} {:>6.1}W {:>6}  {}",
            self.mmae.name,
            self.mmae.freq_ghz,
            self.mmae.area_mm2,
            self.mmae.power_w,
            self.mmae.fmacs,
            format_args!(
                "{:.0}(FP64)/{:.0}(FP32)/{:.0}(FP16)",
                self.mmae.peak_gflops(Precision::Fp64).unwrap_or(0.0),
                self.mmae.peak_gflops(Precision::Fp32).unwrap_or(0.0),
                self.mmae.peak_gflops(Precision::Fp16).unwrap_or(0.0)
            )
        )?;
        writeln!(
            f,
            "MMAE area breakdown: Buffers {:.1}%, SA {:.1}%, AC {:.1}%, ADE {:.1}%",
            self.breakdown.buffers_pct,
            self.breakdown.sa_pct,
            self.breakdown.ac_pct,
            self.breakdown.ade_pct
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iv_peaks() {
        let m = PhysicalModel::default();
        assert!((m.cpu.peak_gflops(Precision::Fp64).unwrap() - 35.2).abs() < 0.01);
        assert!((m.cpu.peak_gflops(Precision::Fp32).unwrap() - 70.4).abs() < 0.5);
        assert_eq!(m.cpu.peak_gflops(Precision::Fp16), None, "CPU has no FP16");
        assert!((m.mmae.peak_gflops(Precision::Fp64).unwrap() - 80.0).abs() < 0.01);
        assert!((m.mmae.peak_gflops(Precision::Fp32).unwrap() - 160.0).abs() < 0.01);
        assert!((m.mmae.peak_gflops(Precision::Fp16).unwrap() - 320.0).abs() < 0.01);
        // The quantized rung continues the 2× ladder: 640 GOPS.
        assert!((m.mmae.peak_gflops(Precision::Int8).unwrap() - 640.0).abs() < 0.01);
        assert_eq!(m.cpu.peak_gflops(Precision::Int8), None, "CPU has no INT8");
    }

    #[test]
    fn paper_ratios_hold() {
        let m = PhysicalModel::default();
        // "the area of MMAE is only 25% of the size of CPU core"
        assert!((m.area_ratio() - 0.25).abs() < 0.01);
        // "a much higher (9×) area efficiency (GFLOPS/mm²)"
        let gain = m.area_efficiency_gain(Precision::Fp64).unwrap();
        assert!((8.0..10.0).contains(&gain), "area-efficiency gain {gain}");
        // "power consumption of MMAE is 25% lower … 2× computation
        // efficiency (GFLOPS/W)". Note: Table IV's own numbers give
        // 53.3 / 17.6 ≈ 3.0× at FP64 — the paper's "2×" understates its
        // own table, so the reproduction asserts the derived value.
        assert!((m.mmae.power_w / m.cpu.power_w - 0.75).abs() < 0.01);
        let pgain = m.power_efficiency_gain(Precision::Fp64).unwrap();
        assert!((2.5..3.5).contains(&pgain), "power-efficiency gain {pgain}");
    }

    #[test]
    fn breakdown_sums_to_full_area() {
        let b = PhysicalModel::default().breakdown;
        let total = b.buffers_pct + b.sa_pct + b.ac_pct + b.ade_pct;
        assert!((total - 100.0).abs() < 0.7, "breakdown sums to {total}%");
    }

    #[test]
    fn display_contains_both_rows() {
        let text = PhysicalModel::default().to_string();
        assert!(text.contains("CPU"));
        assert!(text.contains("MMAE"));
        assert!(text.contains("Buffers 36.7%"));
    }

    #[test]
    fn node_area() {
        let m = PhysicalModel::default();
        assert!((m.node_area_mm2() - 7.83).abs() < 0.01);
    }
}
