//! The GEMM⁺ mapping scheme (Section IV.B, Fig. 5).
//!
//! Real workloads follow GEMM layers with non-GEMM work (normalisation,
//! activation, softmax). MACO maps these **GEMM⁺** workloads by
//!
//! 1. tiling the output across compute nodes — Fig. 5(a) assigns each CN a
//!    column slice of Y, with A shared among nodes;
//! 2. stashing & locking the sub-matrices in L3 ahead of use — Fig. 5(b);
//! 3. overlapping the CPU's non-GEMM work on finished output blocks with
//!    the MMAE's remaining GEMM tiles — Fig. 5(c).
//!
//! [`run_gemm_plus`] executes one such layer on a [`MacoSystem`] and
//! records a [`Timeline`] reproducing Fig. 5(c); [`run_dnn_stream`] chains
//! layers for the Fig. 8 throughput runs.

use maco_cpu::kernels::Kernel;
use maco_isa::Precision;
use maco_sim::{SimDuration, Timeline};
use maco_vm::page_table::TranslateFault;

use crate::system::{MacoSystem, SystemReport};

/// One GEMM⁺ layer: a GEMM followed by an element-wise / row-wise epilogue.
#[derive(Debug, Clone)]
pub struct GemmPlusTask {
    /// Output rows.
    pub m: u64,
    /// Output columns.
    pub n: u64,
    /// Reduction extent.
    pub k: u64,
    /// Compute precision.
    pub precision: Precision,
    /// Non-GEMM epilogue applied to Y, if any.
    pub epilogue: Option<Kernel>,
    /// Whether the CPU epilogue overlaps the MMAE (Fig. 5(c)); disabling
    /// this serialises them, as Baseline-2 does.
    pub overlap: bool,
}

impl GemmPlusTask {
    /// A GEMM-only layer.
    pub fn gemm(m: u64, n: u64, k: u64, precision: Precision) -> Self {
        GemmPlusTask {
            m,
            n,
            k,
            precision,
            epilogue: None,
            overlap: true,
        }
    }

    /// Attaches an epilogue kernel.
    pub fn with_epilogue(mut self, kernel: Kernel) -> Self {
        self.epilogue = Some(kernel);
        self
    }

    /// Disables CPU/MMAE overlap (Baseline-2 behaviour).
    pub fn without_overlap(mut self) -> Self {
        self.overlap = false;
        self
    }

    /// Total floating-point operations of the GEMM part.
    pub fn flops(&self) -> u64 {
        2 * self.m * self.n * self.k
    }
}

/// Result of one GEMM⁺ layer.
#[derive(Debug, Clone)]
pub struct GemmPlusReport {
    /// The underlying multi-node GEMM report.
    pub gemm: SystemReport,
    /// End-to-end layer latency including any non-overlapped epilogue tail.
    pub elapsed: SimDuration,
    /// Total CPU epilogue time across nodes.
    pub epilogue_time: SimDuration,
    /// Fig. 5(c)-style activity timeline.
    pub timeline: Timeline,
}

impl GemmPlusReport {
    /// Layer throughput in GFLOPS (GEMM flops over layer latency).
    pub fn gflops(&self, task: &GemmPlusTask) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            task.flops() as f64 / self.elapsed.as_ns()
        }
    }
}

/// Splits `n` columns over `nodes` as evenly as possible (Fig. 5(a)).
pub fn partition_columns(n: u64, nodes: usize) -> Vec<u64> {
    let nodes = nodes as u64;
    let base = n / nodes;
    let extra = n % nodes;
    (0..nodes)
        .map(|i| base + if i < extra { 1 } else { 0 })
        .filter(|&c| c > 0)
        .collect()
}

/// Chooses the per-node GEMM shapes for one layer: Fig. 5(a) splits the
/// output across nodes along its larger extent (columns for square/wide
/// outputs, rows for the tall outputs im2col produces), so no node
/// receives a degenerate sliver.
///
/// The uneven-split contract (shared by every partition helper in this
/// module): parts differ by at most one unit — the remainder goes to
/// the lowest-indexed nodes — and sum *exactly* to the split extent, so
/// no output row or column is ever lost to remainder handling.
/// Zero-size slivers arise only when there are more nodes than extent
/// units, and those (and only those) are dropped.
pub fn partition_shapes(m: u64, n: u64, k: u64, nodes: usize) -> Vec<(u64, u64, u64)> {
    let mut shapes = Vec::new();
    partition_shapes_into(m, n, k, nodes, &mut shapes);
    shapes
}

/// [`partition_shapes`] into a reusable buffer (DNN streams partition
/// every layer; one long-lived buffer keeps the loop allocation-free).
pub fn partition_shapes_into(
    m: u64,
    n: u64,
    k: u64,
    nodes: usize,
    shapes: &mut Vec<(u64, u64, u64)>,
) {
    shapes.clear();
    let split_cols = n >= m;
    let extent = if split_cols { n } else { m };
    let nodes = nodes as u64;
    let base = extent / nodes;
    let extra = extent % nodes;
    for i in 0..nodes {
        let part = base + u64::from(i < extra);
        if part > 0 {
            shapes.push(if split_cols {
                (m, part, k)
            } else {
                (part, n, k)
            });
        }
    }
    debug_assert!(
        {
            let part = |&(sm, sn, _): &(u64, u64, u64)| if split_cols { sn } else { sm };
            let sum: u64 = shapes.iter().map(part).sum();
            let max = shapes.iter().map(part).max().unwrap_or(0);
            let min = shapes.iter().map(part).min().unwrap_or(0);
            sum == extent && max - min <= 1
        },
        "uneven split must cover the extent exactly in near-equal parts"
    );
}

/// Splits a reduction extent `k` into at most `ways` consecutive non-empty
/// spans, as evenly as possible (earlier spans take the remainder). This is
/// the *data-parallel* split a fleet uses across whole machines: each
/// machine computes a partial product over its span and the partials are
/// combined by an all-reduce, in span order — which is exactly the
/// accumulation order of the unsplit kernel, so the combined result is
/// bit-identical (see `maco_mmae::kernels::matmul_ksplit_into`).
pub fn partition_depth(k: u64, ways: usize) -> Vec<u64> {
    let ways = (ways as u64).max(1);
    let base = k / ways;
    let extra = k % ways;
    let spans: Vec<u64> = (0..ways)
        .map(|i| base + u64::from(i < extra))
        .filter(|&d| d > 0)
        .collect();
    debug_assert!(
        spans.iter().sum::<u64>() == k
            && spans.iter().max().unwrap_or(&0) - spans.iter().min().unwrap_or(&0) <= 1,
        "uneven split must cover the extent exactly in near-equal spans"
    );
    spans
}

/// Splits one GEMM⁺ layer into data-parallel machine parts along the
/// reduction extent (`k`-split): each part keeps the full `m×n` output and
/// takes one span of `k`. The epilogue, if any, stays attached to every
/// part description; callers combining partials apply it once after the
/// reduction. Flops are conserved exactly: `Σ 2·m·n·kᵢ = 2·m·n·k`.
pub fn split_task_k(task: &GemmPlusTask, ways: usize) -> Vec<GemmPlusTask> {
    partition_depth(task.k, ways)
        .into_iter()
        .map(|ki| GemmPlusTask {
            k: ki,
            ..task.clone()
        })
        .collect()
}

/// Span-completion bookkeeping for one in-flight `k`-split reduction: which
/// spans of [`partition_depth`] have reached their barrier. The fleet uses
/// this to checkpoint a data-parallel reduction across a machine failure —
/// the completed *prefix* of spans is exactly the partial sum a surviving
/// machine can resume from (span order is the unsplit kernel's
/// accumulation order, so the resumed chain stays bit-identical; see
/// `maco_mmae::kernels::matmul_ksplit_resume_into`).
#[derive(Debug, Clone)]
pub struct ReductionCheckpoint {
    spans: Vec<u64>,
    done: Vec<bool>,
}

impl ReductionCheckpoint {
    /// Starts tracking a reduction split into `spans` (one entry per
    /// machine part, in span order).
    ///
    /// # Panics
    ///
    /// Panics on an empty or zero-length span list.
    pub fn new(spans: Vec<u64>) -> Self {
        assert!(!spans.is_empty(), "need at least one reduction span");
        assert!(spans.iter().all(|&s| s > 0), "empty reduction span");
        let done = vec![false; spans.len()];
        ReductionCheckpoint { spans, done }
    }

    /// The tracked spans, in reduction order.
    pub fn spans(&self) -> &[u64] {
        &self.spans
    }

    /// Marks span `idx` complete (its partial has reached the barrier).
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range index.
    pub fn complete(&mut self, idx: usize) {
        self.done[idx] = true;
    }

    /// Reduction depth covered by the *contiguous* completed prefix — the
    /// `k` offset a resumed chain restarts from. Completed spans after a
    /// gap do not count: the accumulation chain is ordered, so a partial
    /// behind a lost span cannot be folded in early without changing the
    /// rounding order.
    pub fn completed_prefix_k(&self) -> u64 {
        self.spans
            .iter()
            .zip(&self.done)
            .take_while(|(_, &d)| d)
            .map(|(&s, _)| s)
            .sum()
    }

    /// Indices of spans that still need (re-)execution after resuming
    /// from the completed prefix: everything past the prefix, completed
    /// or not, in span order.
    pub fn lost_spans(&self) -> Vec<usize> {
        let prefix = self.done.iter().take_while(|&&d| d).count();
        (prefix..self.spans.len()).collect()
    }

    /// Whether every span has completed.
    pub fn is_complete(&self) -> bool {
        self.done.iter().all(|&d| d)
    }
}

/// Splits one GEMM⁺ layer into data-parallel machine parts along the
/// output rows (`m`-split): no reduction is needed to combine parts, each
/// owns a disjoint row slab of the output. Degenerate slivers are dropped.
pub fn split_task_m(task: &GemmPlusTask, ways: usize) -> Vec<GemmPlusTask> {
    partition_depth(task.m, ways)
        .into_iter()
        .map(|mi| GemmPlusTask {
            m: mi,
            ..task.clone()
        })
        .collect()
}

/// Reusable staging for repeated GEMM⁺ layers: partition shapes and
/// timeline lane labels, built once and reused across every layer of a
/// DNN stream instead of being reallocated per layer.
#[derive(Debug, Default)]
pub struct GemmPlusScratch {
    shapes: Vec<(u64, u64, u64)>,
    /// `(MMAE lane, CPU lane)` label per node.
    lanes: Vec<(String, String)>,
}

impl GemmPlusScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        GemmPlusScratch::default()
    }
}

/// Executes one GEMM⁺ layer on the system.
///
/// Convenience wrapper over [`run_gemm_plus_with`] that owns a throwaway
/// scratch; layer streams thread one long-lived [`GemmPlusScratch`]
/// through the `_with` variant instead.
///
/// # Errors
///
/// Propagates [`TranslateFault`]s from the mapping layer.
pub fn run_gemm_plus(
    system: &mut MacoSystem,
    task: &GemmPlusTask,
) -> Result<GemmPlusReport, TranslateFault> {
    run_gemm_plus_with(system, task, &mut GemmPlusScratch::new())
}

/// Executes one GEMM⁺ layer on the system, staging partition shapes and
/// lane labels in `scratch`.
///
/// # Errors
///
/// Propagates [`TranslateFault`]s from the mapping layer.
pub fn run_gemm_plus_with(
    system: &mut MacoSystem,
    task: &GemmPlusTask,
    scratch: &mut GemmPlusScratch,
) -> Result<GemmPlusReport, TranslateFault> {
    let nodes = system.node_count();
    partition_shapes_into(task.m, task.n, task.k, nodes, &mut scratch.shapes);
    let gemm = system.run_partitioned_gemm(&scratch.shapes, task.precision)?;
    while scratch.lanes.len() < scratch.shapes.len() {
        let i = scratch.lanes.len();
        scratch
            .lanes
            .push((format!("CN{i}.MMAE"), format!("CN{i}.CPU")));
    }
    let shapes = &scratch.shapes;
    let lanes = &scratch.lanes;

    let mut timeline = Timeline::new();
    let mut elapsed = SimDuration::ZERO;
    let mut epilogue_total = SimDuration::ZERO;

    for (i, node_report) in gemm.nodes.iter().enumerate() {
        let (lane_mmae, lane_cpu) = (&lanes[i].0, &lanes[i].1);
        let gemm_end = maco_sim::SimTime::ZERO + node_report.elapsed;
        timeline.record(lane_mmae, "gemm", maco_sim::SimTime::ZERO, gemm_end);

        let node_elapsed = if let Some(kernel) = &task.epilogue {
            let elems = shapes[i].0 * shapes[i].1;
            let epi = kernel.time_on(&system.config().cpu, elems, task.precision);
            epilogue_total += epi;
            if task.overlap {
                // Epilogue chunks run on finished output blocks while the
                // MMAE continues (Fig. 5(c)). Only the tail that cannot
                // overlap extends the layer: the epilogue of the final
                // block.
                let blocks = shapes[i].0.div_ceil(system.config().mmae.tiling.tr)
                    * shapes[i].1.div_ceil(system.config().mmae.tiling.tc);
                let per_block = SimDuration::from_fs(epi.as_fs() / blocks.max(1));
                let overlap_start = gemm_end.saturating_since(maco_sim::SimTime::ZERO)
                    - per_block.min(node_report.elapsed);
                // Record interleaved CPU spans across the GEMM window.
                for b in 0..blocks.min(8) {
                    let frac_start = node_report.elapsed * (b + 1) / (blocks + 1);
                    timeline.record(
                        lane_cpu,
                        kernel.name,
                        maco_sim::SimTime::ZERO + frac_start,
                        maco_sim::SimTime::ZERO + frac_start + per_block,
                    );
                }
                let _ = overlap_start;
                node_report.elapsed + per_block
            } else {
                // Serial: the whole epilogue follows the GEMM.
                timeline.record(lane_cpu, kernel.name, gemm_end, gemm_end + epi);
                node_report.elapsed + epi
            }
        } else {
            node_report.elapsed
        };
        elapsed = elapsed.max(node_elapsed);
    }

    Ok(GemmPlusReport {
        gemm,
        elapsed,
        epilogue_time: epilogue_total,
        timeline,
    })
}

/// Runs a sequence of GEMM⁺ layers back to back (a DNN inference pass);
/// returns total flops, end-to-end latency and average throughput.
///
/// # Errors
///
/// Propagates [`TranslateFault`]s.
pub fn run_dnn_stream(
    system: &mut MacoSystem,
    layers: &[GemmPlusTask],
) -> Result<DnnReport, TranslateFault> {
    let mut total = SimDuration::ZERO;
    let mut flops = 0u64;
    let mut scratch = GemmPlusScratch::new();
    for layer in layers {
        let report = run_gemm_plus_with(system, layer, &mut scratch)?;
        total += report.elapsed;
        flops += layer.flops();
    }
    Ok(DnnReport {
        layers: layers.len(),
        flops,
        elapsed: total,
    })
}

/// Aggregate result of a DNN inference stream.
#[derive(Debug, Clone, Copy)]
pub struct DnnReport {
    /// Number of GEMM⁺ layers executed.
    pub layers: usize,
    /// Total GEMM flops.
    pub flops: u64,
    /// End-to-end latency.
    pub elapsed: SimDuration,
}

impl DnnReport {
    /// Average throughput in GFLOPS — the Fig. 8 y-axis.
    pub fn gflops(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.flops as f64 / self.elapsed.as_ns()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemConfig;

    fn system(nodes: usize) -> MacoSystem {
        MacoSystem::new(SystemConfig {
            nodes,
            ..SystemConfig::default()
        })
    }

    #[test]
    fn column_partition_covers_exactly() {
        assert_eq!(partition_columns(1024, 4), vec![256; 4]);
        assert_eq!(partition_columns(10, 4), vec![3, 3, 2, 2]);
        assert_eq!(partition_columns(2, 4), vec![1, 1]);
        let parts = partition_columns(9216, 16);
        assert_eq!(parts.iter().sum::<u64>(), 9216);
    }

    #[test]
    fn depth_partition_covers_exactly_and_drops_zeros() {
        assert_eq!(partition_depth(1024, 4), vec![256; 4]);
        assert_eq!(partition_depth(10, 4), vec![3, 3, 2, 2]);
        assert_eq!(partition_depth(2, 4), vec![1, 1]);
        assert_eq!(partition_depth(7, 1), vec![7]);
        for (k, ways) in [(9216u64, 16usize), (33, 5), (1, 8)] {
            let parts = partition_depth(k, ways);
            assert_eq!(parts.iter().sum::<u64>(), k);
            assert!(parts.iter().all(|&d| d > 0));
        }
    }

    #[test]
    fn task_splits_conserve_flops() {
        let task =
            GemmPlusTask::gemm(512, 384, 1000, Precision::Fp32).with_epilogue(Kernel::relu());
        let ksplit = split_task_k(&task, 3);
        assert_eq!(
            ksplit.iter().map(GemmPlusTask::flops).sum::<u64>(),
            task.flops()
        );
        assert!(ksplit.iter().all(|p| p.m == task.m && p.n == task.n));
        let msplit = split_task_m(&task, 3);
        assert_eq!(
            msplit.iter().map(GemmPlusTask::flops).sum::<u64>(),
            task.flops()
        );
        assert!(msplit.iter().all(|p| p.k == task.k && p.n == task.n));
    }

    /// The uneven-split contract, swept over every non-dividing
    /// `(nodes, extent)` shape: m- and k-splits conserve flops exactly,
    /// parts differ by at most one unit, sum exactly to the extent, and
    /// only zero-size slivers (nodes > extent) are ever dropped.
    #[test]
    fn uneven_splits_conserve_flops_on_every_shape() {
        for nodes in 1..17usize {
            for extent in [1u64, 7, 33, 128] {
                let near_equal = |parts: &[u64], whole: u64| {
                    assert_eq!(parts.iter().sum::<u64>(), whole, "{nodes}x{extent}");
                    let (max, min) = (parts.iter().max().unwrap(), parts.iter().min().unwrap());
                    assert!(max - min <= 1, "{nodes}x{extent}: ragged split");
                    assert!(*min > 0, "{nodes}x{extent}: zero sliver kept");
                    assert_eq!(parts.len(), nodes.min(whole as usize), "{nodes}x{extent}");
                };

                let task = GemmPlusTask::gemm(64, 64, extent, Precision::Fp32);
                let ksplit = split_task_k(&task, nodes);
                assert_eq!(
                    ksplit.iter().map(GemmPlusTask::flops).sum::<u64>(),
                    task.flops(),
                    "{nodes}-way k-split of k={extent} lost flops"
                );
                near_equal(&ksplit.iter().map(|p| p.k).collect::<Vec<_>>(), extent);

                let task = GemmPlusTask::gemm(extent, 64, 64, Precision::Fp32);
                let msplit = split_task_m(&task, nodes);
                assert_eq!(
                    msplit.iter().map(GemmPlusTask::flops).sum::<u64>(),
                    task.flops(),
                    "{nodes}-way m-split of m={extent} lost flops"
                );
                near_equal(&msplit.iter().map(|p| p.m).collect::<Vec<_>>(), extent);

                // Fig. 5(a) node partitions of wide and tall outputs: the
                // split extent is covered exactly in both orientations.
                let wide = partition_shapes(1, extent, 8, nodes);
                near_equal(&wide.iter().map(|&(_, n, _)| n).collect::<Vec<_>>(), extent);
                assert!(wide.iter().all(|&(m, _, k)| m == 1 && k == 8));
                let tall_m = extent.max(2);
                let tall = partition_shapes(tall_m, 1, 8, nodes);
                near_equal(&tall.iter().map(|&(m, _, _)| m).collect::<Vec<_>>(), tall_m);
                assert!(tall.iter().all(|&(_, n, k)| n == 1 && k == 8));
            }
        }
    }

    #[test]
    fn gemm_plus_overlap_hides_epilogue() {
        let mut sys = system(4);
        let base = GemmPlusTask::gemm(2048, 2048, 2048, Precision::Fp32);
        let overlapped =
            run_gemm_plus(&mut sys, &base.clone().with_epilogue(Kernel::softmax())).unwrap();
        let mut sys2 = system(4);
        let serial = run_gemm_plus(
            &mut sys2,
            &base.with_epilogue(Kernel::softmax()).without_overlap(),
        )
        .unwrap();
        assert!(
            overlapped.elapsed < serial.elapsed,
            "overlap {} vs serial {}",
            overlapped.elapsed,
            serial.elapsed
        );
    }

    #[test]
    fn timeline_shows_cpu_mmae_overlap() {
        let mut sys = system(2);
        let task =
            GemmPlusTask::gemm(2048, 2048, 1024, Precision::Fp32).with_epilogue(Kernel::gelu());
        let report = run_gemm_plus(&mut sys, &task).unwrap();
        let overlap = report.timeline.overlap_between("CN0.MMAE", "CN0.CPU");
        assert!(overlap > SimDuration::ZERO, "Fig. 5(c) overlap exists");
    }

    #[test]
    fn dnn_stream_accumulates() {
        let mut sys = system(4);
        let layers = vec![
            GemmPlusTask::gemm(512, 512, 512, Precision::Fp32),
            GemmPlusTask::gemm(512, 512, 512, Precision::Fp32).with_epilogue(Kernel::relu()),
        ];
        let report = run_dnn_stream(&mut sys, &layers).unwrap();
        assert_eq!(report.layers, 2);
        assert_eq!(report.flops, 2 * 2 * 512u64.pow(3));
        assert!(report.gflops() > 0.0);
    }

    #[test]
    fn more_nodes_more_throughput() {
        let task = GemmPlusTask::gemm(4096, 4096, 4096, Precision::Fp32);
        let mut one = system(1);
        let g1 = run_gemm_plus(&mut one, &task).unwrap().gflops(&task);
        let mut four = system(4);
        let g4 = run_gemm_plus(&mut four, &task).unwrap().gflops(&task);
        assert!(g4 > g1 * 2.5, "scaling: 1 node {g1}, 4 nodes {g4}");
    }
}
