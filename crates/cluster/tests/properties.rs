//! Property-based invariants of the fleet layer (128 cases each under the
//! vendored proptest), plus the acceptance-style end-to-end check: a
//! 4-machine cluster serving the mixed BERT/GPT-3/ResNet trace is
//! deterministic, conserves flops against the serial single-machine
//! baseline, and out-throughputs one machine of equal total node count.
//!
//! * **machine exclusivity** — no job is simultaneously resident on two
//!   machines unless it was split data-parallel, and within every machine
//!   gangs hold nodes exclusively;
//! * **flops conservation** — the fleet serves exactly the flops a serial
//!   single-machine run of the same jobs serves;
//! * **fingerprint identity** — same seed, same fleet schedule, byte for
//!   byte, on a reused cluster and on a freshly built one;
//! * **k-split bit-identity** — the data-parallel k-split's functional
//!   result equals the unsplit kernel bit for bit at every precision.

use proptest::prelude::*;

use maco_cluster::{split, Cluster, ClusterSpec, Placement, SplitKind, SplitSpec};
use maco_core::gemm_plus::{partition_depth, GemmPlusTask};
use maco_core::system::{MacoSystem, SystemConfig};
use maco_isa::Precision;
use maco_mmae::kernels::GemmOperands;
use maco_serve::{JobSpec, Policy, ServeConfig, Server, Tenant};
use maco_sim::{SimDuration, SimTime, SplitMix64};
use maco_workloads::trace::{self, TraceConfig};

/// Builds a synthetic job mix from sampled raw values (the serve suite's
/// generator, reused shape for shape so fleet and single-machine episodes
/// see identical inputs).
fn synthetic_jobs(raw: &[(u64, u64, u64, u64, u64)], tenants: usize) -> Vec<JobSpec> {
    let mut arrival = SimTime::ZERO;
    raw.iter()
        .map(|&(tenant, dim, layers, width, gap)| {
            arrival += SimDuration::from_ns(200 + gap);
            let d = 32 * (1 + dim);
            JobSpec {
                tenant: tenant as usize % tenants,
                layers: (0..1 + layers)
                    .map(|i| GemmPlusTask::gemm(d, d + 32 * i, d, Precision::Fp32))
                    .collect(),
                arrival,
                priority: (tenant % 4) as u8,
                deadline: None,
                gang_width: 1 + width as usize,
            }
        })
        .collect()
}

fn placement_of(idx: u64) -> Placement {
    Placement::ALL[idx as usize % Placement::ALL.len()]
}

fn fleet_spec(machines: usize, nodes_each: usize, placement: u64, split: bool) -> ClusterSpec {
    let mut spec =
        ClusterSpec::uniform(machines, nodes_each).with_placement(placement_of(placement));
    if split {
        // Low threshold so sampled single-layer jobs actually split.
        spec = spec.with_split(SplitSpec::new(
            SplitKind::KSplit,
            2 * 64 * 64 * 64,
            machines,
        ));
    }
    spec
}

proptest! {
    /// No job is resident on two machines unless split data-parallel, and
    /// split parts land on pairwise-distinct machines. Within each
    /// machine, gangs hold nodes exclusively (lease intervals never
    /// overlap).
    #[test]
    fn machine_exclusivity(
        raw in proptest::collection::vec((0u64..6, 0u64..3, 0u64..2, 0u64..4, 0u64..2000), 2..6),
        machines in 1usize..4,
        nodes in 2usize..4,
        placement in 0u64..3,
        split in 0u64..2,
    ) {
        let specs = synthetic_jobs(&raw, 4);
        let mut fleet = Cluster::new(
            fleet_spec(machines, nodes, placement, split == 1),
            Tenant::fleet(4),
        );
        let report = fleet.run_jobs(specs).expect("fleet episode completes");
        prop_assert_eq!(report.jobs_completed as usize, raw.len());
        prop_assert_eq!(report.diagnostics.outstanding_clamps, 0);
        prop_assert_eq!(report.fault.jobs_lost, 0);
        for job in &report.jobs {
            match job.split {
                None => prop_assert_eq!(job.machines.len(), 1, "unsplit on one machine"),
                Some(_) => {
                    prop_assert!(job.machines.len() >= 2);
                    let mut ms = job.machines.clone();
                    ms.sort_unstable();
                    ms.dedup();
                    prop_assert_eq!(ms.len(), job.machines.len(), "split parts on distinct machines");
                }
            }
            prop_assert!(job.machines.iter().all(|&m| m < machines));
        }
        for m in &report.machines {
            for node in 0..m.nodes {
                let mut spans: Vec<(SimTime, SimTime)> = m
                    .serve
                    .leases
                    .iter()
                    .filter(|l| l.node == node)
                    .map(|l| (l.from, l.until))
                    .collect();
                spans.sort();
                for w in spans.windows(2) {
                    prop_assert!(w[1].0 >= w[0].1, "{}: node {node} double-booked", m.name);
                }
            }
        }
    }

    /// The fleet serves exactly the flops a serial single-machine run of
    /// the same jobs serves — routing, migration delays and data-parallel
    /// splits redistribute work but never create or destroy it.
    #[test]
    fn flops_conserved_vs_serial(
        raw in proptest::collection::vec((0u64..6, 0u64..3, 0u64..2, 0u64..4, 0u64..2000), 2..6),
        machines in 1usize..4,
        nodes in 2usize..4,
        placement in 0u64..3,
        split in 0u64..2,
    ) {
        let specs = synthetic_jobs(&raw, 4);
        let mut serial = Server::new(
            MacoSystem::new(SystemConfig { nodes, ..SystemConfig::default() }),
            Tenant::fleet(4),
            ServeConfig::with_policy(Policy::Fifo),
        );
        let serial_flops = serial.run_jobs(specs.clone()).expect("serial completes").total_flops;
        let mut fleet = Cluster::new(
            fleet_spec(machines, nodes, placement, split == 1),
            Tenant::fleet(4),
        );
        let report = fleet.run_jobs(specs.clone()).expect("fleet completes");
        prop_assert_eq!(report.diagnostics.outstanding_clamps, 0);
        prop_assert_eq!(report.total_flops, serial_flops);
        let submitted: u64 = specs.iter().map(JobSpec::flops).sum();
        prop_assert_eq!(report.total_flops, submitted);
        let per_tenant: u64 = report.per_tenant_flops().iter().sum();
        prop_assert_eq!(per_tenant, submitted, "tenant attribution covers everything");
    }

    /// Identical inputs yield byte-identical fleet fingerprints, on a
    /// reused cluster and on a freshly built one.
    #[test]
    fn same_seed_same_fingerprint(
        raw in proptest::collection::vec((0u64..6, 0u64..3, 0u64..2, 0u64..4, 0u64..2000), 2..5),
        machines in 1usize..4,
        nodes in 2usize..4,
        placement in 0u64..3,
        split in 0u64..2,
    ) {
        let specs = synthetic_jobs(&raw, 4);
        let spec = fleet_spec(machines, nodes, placement, split == 1);
        let mut fleet = Cluster::new(spec.clone(), Tenant::fleet(4));
        let a = fleet.run_jobs(specs.clone()).expect("fleet completes");
        let b = fleet.run_jobs(specs.clone()).expect("fleet completes");
        prop_assert_eq!(a.fingerprint, b.fingerprint, "reused cluster diverged");
        let mut fresh = Cluster::new(spec, Tenant::fleet(4));
        let c = fresh.run_jobs(specs).expect("fleet completes");
        prop_assert_eq!(a.fingerprint, c.fingerprint, "fresh cluster diverged");
        prop_assert_eq!(a.makespan, c.makespan);
        prop_assert_eq!(a.diagnostics.outstanding_clamps, 0);
        prop_assert_eq!(c.diagnostics.outstanding_clamps, 0);
    }

    /// The data-parallel k-split's functional result is bit-identical to
    /// the unsplit kernel at every precision, for random shapes and split
    /// counts.
    #[test]
    fn ksplit_gemm_bitidentical_to_unsplit(
        m in 1usize..12,
        n in 1usize..12,
        k in 1usize..48,
        ways in 1usize..6,
        precision in 0u64..3,
        seed in 0u64..1_000_000,
    ) {
        let precision = [Precision::Fp64, Precision::Fp32, Precision::Fp16]
            [precision as usize];
        let mut rng = SplitMix64::new(seed);
        let a: Vec<f64> = (0..m * k).map(|_| rng.next_signed_unit()).collect();
        let b: Vec<f64> = (0..k * n).map(|_| rng.next_signed_unit()).collect();
        let c: Vec<f64> = (0..m * n).map(|_| rng.next_signed_unit()).collect();
        let ops = GemmOperands::new(&a, &b, &c, m, n, k);
        let splits = partition_depth(k as u64, ways);
        let whole = split::unsplit_functional(ops, precision);
        let chained = split::ksplit_functional(ops, precision, &splits);
        for (i, (w, s)) in whole.iter().zip(&chained).enumerate() {
            prop_assert_eq!(
                w.to_bits(),
                s.to_bits(),
                "{:?} {}x{}x{} splits {:?} element {}",
                precision, m, n, k, &splits, i
            );
        }
    }
}

/// A one-machine cluster with splits disabled is the standalone server,
/// bit for bit: same schedule fingerprint, same makespan, same tenant
/// stats. The fleet layer adds routing, never different physics.
#[test]
fn one_machine_cluster_matches_standalone_server() {
    let trace = trace::generate(&TraceConfig {
        seed: 0xC1,
        tenants: 4,
        requests: 8,
        layer_cap: 2,
        ..TraceConfig::default()
    });
    let mut server = Server::new(
        MacoSystem::new(SystemConfig {
            nodes: 8,
            ..SystemConfig::default()
        }),
        Tenant::fleet(4),
        ServeConfig::default(),
    );
    let solo = server.run_trace(&trace).expect("server completes");
    let mut fleet = Cluster::new(ClusterSpec::uniform(1, 8), Tenant::fleet(4));
    let fleet_report = fleet.run_trace(&trace).expect("fleet completes");
    let machine = &fleet_report.machines[0].serve;
    assert_eq!(machine.fingerprint, solo.fingerprint);
    assert_eq!(machine.makespan, solo.makespan);
    assert_eq!(machine.total_flops, solo.total_flops);
    assert_eq!(fleet_report.makespan, solo.makespan);
    assert_eq!(
        fleet_report.interconnect_bytes, 0,
        "no cross-machine traffic"
    );
    assert_eq!(fleet_report.diagnostics.outstanding_clamps, 0);
    assert_eq!(fleet_report.fault.jobs_lost, 0);
    assert!(
        (fleet_report.fault.availability - 1.0).abs() < f64::EPSILON,
        "healthy fleet is fully available"
    );
    for (a, b) in machine.tenants.iter().zip(&solo.tenants) {
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.flops, b.flops);
        assert_eq!(a.latency_sum, b.latency_sum);
    }
}

/// The one-machine equivalence holds in the contention corners too:
/// near-simultaneous arrivals and minimal jobs are exactly the regime
/// where a bounded arrival drain could reorder scheduling attempts, so
/// the tie-storm mixes are replayed through both paths under every
/// policy.
#[test]
fn one_machine_cluster_matches_server_under_tie_storms() {
    for (seed, nodes) in [(1u64, 2usize), (2, 3), (3, 4)] {
        let mut arrival = SimTime::ZERO;
        let specs: Vec<JobSpec> = (0..10)
            .map(|i| {
                arrival += SimDuration::from_ns((seed + i) % 2);
                let d = if i % 3 == 0 { 1 } else { 32 * (1 + i % 3) };
                JobSpec {
                    tenant: (i % 4) as usize,
                    layers: vec![GemmPlusTask::gemm(d, d, d, Precision::Fp32)],
                    arrival,
                    priority: (i % 3) as u8,
                    deadline: None,
                    gang_width: 1 + (i % 5) as usize,
                }
            })
            .collect();
        for policy in Policy::ALL {
            let mut server = Server::new(
                MacoSystem::new(SystemConfig {
                    nodes,
                    ..SystemConfig::default()
                }),
                Tenant::fleet(4),
                ServeConfig::with_policy(policy),
            );
            let solo = server.run_jobs(specs.clone()).expect("server completes");
            let mut spec = ClusterSpec::uniform(1, nodes);
            spec.machines[0].serve = ServeConfig::with_policy(policy);
            let mut fleet = Cluster::new(spec, Tenant::fleet(4));
            let fleet_report = fleet.run_jobs(specs.clone()).expect("fleet completes");
            let machine = &fleet_report.machines[0].serve;
            assert_eq!(
                machine.fingerprint, solo.fingerprint,
                "{policy:?} seed {seed}"
            );
            assert_eq!(machine.makespan, solo.makespan, "{policy:?} seed {seed}");
            assert_eq!(fleet_report.diagnostics.outstanding_clamps, 0);
        }
    }
}

/// The acceptance configuration — the `cluster_throughput` benchmark
/// scenario: the mixed BERT/GPT-3/ResNet fleet trace served by a 4×4-node
/// bandwidth-constrained fleet vs one 16-node machine of the same
/// hardware. The fleet must be deterministic, conserve flops against the
/// serial single-machine baseline, and deliver ≥2x throughput at equal
/// total node count (four private uncores plus the k-split fanning heavy
/// layers across machines vs one shared uncore).
#[test]
fn four_machine_fleet_beats_one_machine_at_equal_nodes() {
    let trace = trace::generate(&TraceConfig::fleet(0xF1EE7));
    let tenants = Tenant::fleet(8);

    let mut one = Cluster::new(ClusterSpec::bandwidth_constrained(1, 16), tenants.clone());
    let r1 = one.run_trace(&trace).expect("one-machine fleet completes");

    let mut four = Cluster::new(ClusterSpec::bandwidth_constrained(4, 4), tenants.clone());
    let r4 = four.run_trace(&trace).expect("4-machine fleet completes");
    let r4b = four.run_trace(&trace).expect("repeat completes");

    // Deterministic: same seed, same fleet schedule.
    assert_eq!(r4.fingerprint, r4b.fingerprint);
    assert_eq!(r4.makespan, r4b.makespan);
    assert!(r4.splits > 0, "heavy layers split data-parallel");

    // Conserves flops vs the serial single-machine baseline.
    let mut serial = Server::new(
        MacoSystem::new(SystemConfig {
            ccm_gbps: 4.0,
            ..SystemConfig::default()
        }),
        tenants,
        ServeConfig::default(),
    );
    let baseline = serial.run_trace(&trace).expect("serial completes");
    assert_eq!(r4.total_flops, baseline.total_flops);
    assert_eq!(r1.total_flops, baseline.total_flops);
    assert_eq!(r4.jobs_completed, trace.len() as u64);

    // ≥2x fleet throughput at equal total node count.
    let speedup = r4.total_gflops() / r1.total_gflops();
    assert!(
        speedup >= 2.0,
        "4x4 fleet speedup over 1x16: {speedup:.2} ({:.1} vs {:.1} GFLOPS)",
        r4.total_gflops(),
        r1.total_gflops()
    );

    // Fairness and reporting stay sane.
    assert!(r4.fairness() > 0.0 && r4.fairness() <= 1.0);
    assert!(r4.mean_latency() > SimDuration::ZERO);
    assert!(r4.interconnect_bytes > 0, "splits paid the interconnect");
    assert_eq!(r1.diagnostics.outstanding_clamps, 0);
    assert_eq!(r4.diagnostics.outstanding_clamps, 0);
    assert_eq!(r4.fault.jobs_lost, 0);
    assert_eq!(r4.fault.fingerprint, 0, "healthy fleet has no fault events");
}

/// Regression for the mid-episode overflow panic: an undersized machine
/// admission queue used to surface as an opaque slot-desync assert deep
/// inside `FleetEpisode::complete`; it must now fail *before* the episode
/// starts, with the offending machine named.
#[test]
#[should_panic(expected = "machine 1 (m1) queue_capacity 2")]
fn undersized_machine_queue_fails_preflight_naming_the_machine() {
    let mut spec = ClusterSpec::uniform(2, 2);
    spec.machines[1].serve.queue_capacity = 2;
    let mut cluster = Cluster::new(spec, Tenant::fleet(2));
    let jobs: Vec<JobSpec> = (0..3)
        .map(|i| {
            JobSpec::single(
                0,
                GemmPlusTask::gemm(32, 32, 32, Precision::Fp32),
                SimTime::ZERO + SimDuration::from_ns(i),
            )
        })
        .collect();
    let _ = cluster.run_jobs(jobs);
}

/// The pre-flight bound counts only admissible jobs: invalid specs are
/// rejected at routing and never occupy a machine queue slot, so a trace
/// of mostly-degenerate jobs still runs on small queues.
#[test]
fn preflight_ignores_inadmissible_jobs() {
    let mut spec = ClusterSpec::uniform(2, 2);
    for m in &mut spec.machines {
        m.serve.queue_capacity = 2;
    }
    let mut cluster = Cluster::new(spec, Tenant::fleet(2));
    let mut jobs: Vec<JobSpec> = (0..4)
        .map(|i| {
            // Degenerate (zero-extent) layers are inadmissible.
            JobSpec::single(
                0,
                GemmPlusTask::gemm(0, 32, 32, Precision::Fp32),
                SimTime::ZERO + SimDuration::from_ns(i),
            )
        })
        .collect();
    jobs.push(JobSpec::single(
        1,
        GemmPlusTask::gemm(32, 32, 32, Precision::Fp32),
        SimTime::ZERO + SimDuration::from_ns(9),
    ));
    let report = cluster.run_jobs(jobs).expect("episode completes");
    assert_eq!(report.jobs_completed, 1);
    assert_eq!(report.jobs_rejected, 4);
    assert_eq!(report.diagnostics.outstanding_clamps, 0);
    assert_eq!(report.fault.jobs_lost, 0);
}
