//! Telemetry determinism contracts (128 cases each under the vendored
//! proptest):
//!
//! * **observer invisibility** — attaching a [`TraceSink`] never perturbs
//!   simulated outcomes: schedule and fault fingerprints are
//!   byte-identical between a traced and an untraced run of the same
//!   episode, faults included;
//! * **trace determinism** — same seed, same episode, same *trace*
//!   fingerprint, on fresh clusters and fresh sinks — and independent of
//!   the ring capacity, since the fingerprint folds every record at
//!   record time.

use proptest::prelude::*;

use maco_cluster::{Cluster, ClusterSpec, FaultSpec, Placement, SplitKind, SplitSpec, TraceSink};
use maco_core::gemm_plus::GemmPlusTask;
use maco_isa::Precision;
use maco_serve::{JobSpec, Tenant};
use maco_sim::{SimDuration, SimTime};

/// The fleet suites' synthetic job generator, shape for shape.
fn synthetic_jobs(raw: &[(u64, u64, u64, u64, u64)], tenants: usize) -> Vec<JobSpec> {
    let mut arrival = SimTime::ZERO;
    raw.iter()
        .map(|&(tenant, dim, layers, width, gap)| {
            arrival += SimDuration::from_ns(200 + gap);
            let d = 32 * (1 + dim);
            JobSpec {
                tenant: tenant as usize % tenants,
                layers: (0..1 + layers)
                    .map(|i| GemmPlusTask::gemm(d, d + 32 * i, d, Precision::Fp32))
                    .collect(),
                arrival,
                priority: (tenant % 4) as u8,
                deadline: None,
                gang_width: 1 + width as usize,
            }
        })
        .collect()
}

/// A fleet spec drawn from sampled raw values, optionally with a k-split
/// policy and (for multi-machine fleets) a mid-burst fail-stop with
/// recovery, so traced episodes cover the fault/evict/re-place paths too.
fn episode_spec(
    machines: usize,
    nodes: usize,
    placement: u64,
    split: bool,
    fail: bool,
    jobs: &[JobSpec],
) -> ClusterSpec {
    let mut spec = ClusterSpec::uniform(machines, nodes)
        .with_placement(Placement::ALL[placement as usize % Placement::ALL.len()]);
    if split {
        spec = spec.with_split(SplitSpec::new(
            SplitKind::KSplit,
            2 * 64 * 64 * 64,
            machines,
        ));
    }
    if fail && machines >= 2 {
        let kill = jobs[jobs.len() / 2].arrival;
        spec = spec.with_faults(FaultSpec::none().with_failure(
            1,
            kill,
            Some(kill + SimDuration::from_us(100)),
        ));
    }
    spec
}

proptest! {
    /// Sink-on vs sink-off: the traced episode's schedule and fault
    /// fingerprints equal the untraced run's, byte for byte — the enabled
    /// sink is a pure observer.
    #[test]
    fn tracing_never_perturbs_simulated_outcomes(
        raw in proptest::collection::vec((0u64..6, 0u64..3, 0u64..2, 0u64..4, 0u64..2000), 2..5),
        machines in 1usize..4,
        nodes in 2usize..4,
        placement in 0u64..3,
        split in 0u64..2,
        fail in 0u64..2,
    ) {
        let jobs = synthetic_jobs(&raw, 4);
        let spec = episode_spec(machines, nodes, placement, split == 1, fail == 1, &jobs);

        let mut plain = Cluster::new(spec.clone(), Tenant::fleet(4));
        let untraced = plain.run_jobs(jobs.clone()).expect("untraced episode completes");

        let sink = TraceSink::on();
        let mut fleet = Cluster::new(spec, Tenant::fleet(4));
        fleet.set_trace_sink(sink.clone());
        let traced = fleet.run_jobs(jobs).expect("traced episode completes");

        prop_assert_eq!(traced.fingerprint, untraced.fingerprint);
        prop_assert_eq!(traced.fault.fingerprint, untraced.fault.fingerprint);
        prop_assert_eq!(traced.jobs_completed, untraced.jobs_completed);
        prop_assert!(sink.recorded() > 0, "an enabled sink must record the episode");
    }

    /// Same seed, same trace fingerprint — across fresh clusters, fresh
    /// sinks and different ring capacities (the fingerprint folds at
    /// record time, so retention never leaks into it).
    #[test]
    fn same_seed_yields_identical_trace_fingerprints(
        raw in proptest::collection::vec((0u64..6, 0u64..3, 0u64..2, 0u64..4, 0u64..2000), 2..5),
        machines in 1usize..4,
        nodes in 2usize..4,
        placement in 0u64..3,
        split in 0u64..2,
        fail in 0u64..2,
    ) {
        let jobs = synthetic_jobs(&raw, 4);
        let spec = episode_spec(machines, nodes, placement, split == 1, fail == 1, &jobs);

        let run = |capacity: usize| {
            let sink = TraceSink::with_capacity(capacity);
            let mut fleet = Cluster::new(spec.clone(), Tenant::fleet(4));
            fleet.set_trace_sink(sink.clone());
            let report = fleet.run_jobs(jobs.clone()).expect("traced episode completes");
            let trace = sink.drain().expect("sink is on");
            (report, trace)
        };
        let (r1, t1) = run(1 << 16);
        let (r2, t2) = run(64);

        prop_assert_eq!(t1.fingerprint, t2.fingerprint);
        prop_assert_eq!(t1.recorded, t2.recorded);
        prop_assert_eq!(r1.fingerprint, r2.fingerprint);
        prop_assert_eq!(r1.fault.fingerprint, r2.fault.fingerprint);
    }
}
