//! Mixed-precision fleet serving: the `TraceConfig::quantized` INT8/FP16
//! tenant mix routed through `maco-cluster`.
//!
//! The fleet adds routing, data-parallel splits and failure handling on
//! top of the per-machine server; none of it may lose flops or
//! determinism when requests carry per-tenant precisions. 128 cases each
//! under the vendored proptest.

use proptest::prelude::*;

use maco_cluster::{Cluster, ClusterSpec};
use maco_isa::Precision;
use maco_serve::{JobSpec, Tenant};
use maco_workloads::trace::{self, TraceConfig, TraceRequest};

/// A cheap mixed INT8/FP16 stream on the micro request shapes.
fn quantized_micro(seed: u64, requests: usize) -> (TraceConfig, Vec<TraceRequest>) {
    let config = TraceConfig {
        tenant_precisions: vec![Precision::Int8, Precision::Fp16],
        ..TraceConfig::micro(seed, requests)
    };
    let t = trace::generate(&config);
    (config, t)
}

proptest! {
    /// A mixed INT8/FP16 trace served by a fleet conserves flops exactly
    /// against the serial per-job sum, whatever the fleet shape.
    #[test]
    fn fleet_conserves_mixed_precision_flops_vs_serial(
        seed in 0u64..1_000_000,
        requests in 4usize..14,
        machines in 1usize..4,
        nodes in 2usize..5,
    ) {
        let (config, t) = quantized_micro(seed, requests);
        let serial: u64 = t.iter().map(|r| JobSpec::from_request(r).flops()).sum();
        let mut fleet = Cluster::new(
            ClusterSpec::uniform(machines, nodes),
            Tenant::fleet(config.tenants),
        );
        let report = fleet.run_trace(&t).expect("episode completes");
        prop_assert_eq!(report.jobs_completed, t.len() as u64);
        prop_assert_eq!(report.total_flops, serial);
    }

    /// Same-seed mixed-precision episodes reproduce the fleet schedule
    /// fingerprint byte for byte on freshly built clusters.
    #[test]
    fn fleet_reproduces_mixed_precision_fingerprints_same_seed(
        seed in 0u64..1_000_000,
        requests in 4usize..12,
        machines in 1usize..4,
    ) {
        let (config, t) = quantized_micro(seed, requests);
        let run = |t: &[TraceRequest]| {
            let mut fleet = Cluster::new(
                ClusterSpec::uniform(machines, 4),
                Tenant::fleet(config.tenants),
            );
            fleet.run_trace(t).expect("episode completes")
        };
        let a = run(&t);
        let b = run(&t);
        prop_assert_eq!(a.fingerprint, b.fingerprint);
        prop_assert_eq!(a.makespan, b.makespan);
        // Regenerated same-seed trace → same fingerprint end to end.
        let (_, again) = quantized_micro(seed, requests);
        let c = run(&again);
        prop_assert_eq!(a.fingerprint, c.fingerprint, "trace generation drifted");
    }
}
