//! Failure and elasticity invariants of the fleet layer (128 cases each
//! under the vendored proptest), plus the deterministic edge-case suite.
//!
//! The contracts under test:
//!
//! * **no job is ever lost** — kill half the fleet mid-burst and every
//!   admitted job still runs to completion
//!   ([`maco_cluster::FaultReport::jobs_lost`] is 0, always);
//! * **flops conservation under failure** — evicted remainders restart
//!   from their last completed layer and interrupted layers re-run, so
//!   the fleet serves *exactly* the flops a no-failure serial run serves
//!   (a layer is credited once, at its completion barrier, on whichever
//!   machine completes it);
//! * **determinism under failure** — same seed, same fault schedule,
//!   byte-identical schedule *and* fault fingerprints, on a reused
//!   cluster and on a freshly built one;
//! * **edge cases** — failure before the first arrival, failure of an
//!   idle machine (recovery latency exactly zero), all-but-one machines
//!   dead, mid-k-split failure (the reduction resumes, numerics proven
//!   bit-identical in the split property suite), total outage with
//!   arrivals deferred to a scheduled recovery;
//! * **elasticity** — the autoscaler grows under a burst, shrinks when
//!   the window drains, and never scales below `min_machines`; an
//!   interconnect degradation window makes every charged transfer
//!   strictly slower.

use proptest::prelude::*;

use maco_cluster::{
    AutoscalerSpec, Cluster, ClusterSpec, DegradationWindow, FaultSpec, Placement, SplitKind,
    SplitSpec,
};
use maco_core::gemm_plus::GemmPlusTask;
use maco_core::system::{MacoSystem, SystemConfig};
use maco_isa::Precision;
use maco_serve::{JobSpec, Policy, ServeConfig, Server, Tenant};
use maco_sim::{SimDuration, SimTime};

/// The serve suite's synthetic job generator, shape for shape, so failure
/// episodes replay the same inputs the healthy property suite pins.
fn synthetic_jobs(raw: &[(u64, u64, u64, u64, u64)], tenants: usize) -> Vec<JobSpec> {
    let mut arrival = SimTime::ZERO;
    raw.iter()
        .map(|&(tenant, dim, layers, width, gap)| {
            arrival += SimDuration::from_ns(200 + gap);
            let d = 32 * (1 + dim);
            JobSpec {
                tenant: tenant as usize % tenants,
                layers: (0..1 + layers)
                    .map(|i| GemmPlusTask::gemm(d, d + 32 * i, d, Precision::Fp32))
                    .collect(),
                arrival,
                priority: (tenant % 4) as u8,
                deadline: None,
                gang_width: 1 + width as usize,
            }
        })
        .collect()
}

fn placement_of(idx: u64) -> Placement {
    Placement::ALL[idx as usize % Placement::ALL.len()]
}

fn fleet_spec(machines: usize, nodes_each: usize, placement: u64, split: bool) -> ClusterSpec {
    let mut spec =
        ClusterSpec::uniform(machines, nodes_each).with_placement(placement_of(placement));
    if split {
        spec = spec.with_split(SplitSpec::new(
            SplitKind::KSplit,
            2 * 64 * 64 * 64,
            machines,
        ));
    }
    spec
}

/// One big job the healthy fleet runs long enough that a mid-makespan
/// fail-stop is guaranteed to catch it in flight.
fn one_heavy_job(layers: usize) -> Vec<JobSpec> {
    vec![JobSpec {
        tenant: 0,
        layers: (0..layers)
            .map(|_| GemmPlusTask::gemm(256, 256, 256, Precision::Fp32))
            .collect(),
        arrival: SimTime::ZERO,
        priority: 0,
        deadline: None,
        gang_width: 2,
    }]
}

proptest! {
    /// Kill half the fleet mid-burst (storm times drawn inside the
    /// healthy run's makespan, with and without recovery): zero lost
    /// jobs, flops conserved against the no-failure serial run, and the
    /// whole episode — schedule and fault layer both — byte-identical
    /// across a reused cluster and a fresh one.
    #[test]
    fn killing_half_the_fleet_loses_nothing(
        raw in proptest::collection::vec((0u64..6, 0u64..3, 0u64..2, 0u64..4, 0u64..2000), 2..6),
        machines in 2usize..5,
        nodes in 2usize..4,
        placement in 0u64..3,
        split in 0u64..2,
        storm_seed in 0u64..10_000,
        recover in 0u64..2,
    ) {
        let specs = synthetic_jobs(&raw, 4);
        let base = fleet_spec(machines, nodes, placement, split == 1);

        // Probe the healthy makespan so the storm lands mid-burst.
        let mut healthy = Cluster::new(base.clone(), Tenant::fleet(4));
        let h = healthy.run_jobs(specs.clone()).expect("healthy episode completes");
        prop_assert!(h.makespan > SimDuration::ZERO);
        let outage = (recover == 1).then_some(h.makespan);
        let faults = FaultSpec::storm(
            storm_seed,
            machines,
            machines / 2,
            SimTime::ZERO,
            SimTime::ZERO + h.makespan,
            outage,
        );
        let spec = base.with_faults(faults);

        let mut fleet = Cluster::new(spec.clone(), Tenant::fleet(4));
        let r = fleet.run_jobs(specs.clone()).expect("storm episode completes");
        prop_assert_eq!(r.fault.jobs_lost, 0, "fail-stop lost admitted jobs");
        prop_assert_eq!(r.jobs_completed as usize, raw.len());
        prop_assert_eq!(r.fault.failures as usize, machines / 2);
        prop_assert_eq!(r.diagnostics.outstanding_clamps, 0);
        prop_assert!(r.fault.availability < 1.0, "downtime must show");
        prop_assert!(r.fault.fingerprint != 0, "fault layer saw events");

        // Flops conserved vs the no-failure serial run: re-placement
        // re-executes interrupted layers but credits each exactly once.
        let mut serial = Server::new(
            MacoSystem::new(SystemConfig { nodes, ..SystemConfig::default() }),
            Tenant::fleet(4),
            ServeConfig::with_policy(Policy::Fifo),
        );
        let serial_flops = serial.run_jobs(specs.clone()).expect("serial completes").total_flops;
        prop_assert_eq!(r.total_flops, serial_flops);
        let submitted: u64 = specs.iter().map(JobSpec::flops).sum();
        prop_assert_eq!(r.total_flops, submitted);

        // Same seed, same storm — byte for byte, reused and fresh.
        let r2 = fleet.run_jobs(specs.clone()).expect("repeat completes");
        prop_assert_eq!(r.fingerprint, r2.fingerprint, "reused cluster diverged");
        prop_assert_eq!(r.fault.fingerprint, r2.fault.fingerprint);
        let mut fresh = Cluster::new(spec, Tenant::fleet(4));
        let r3 = fresh.run_jobs(specs).expect("fresh completes");
        prop_assert_eq!(r.fingerprint, r3.fingerprint, "fresh cluster diverged");
        prop_assert_eq!(r.fault.fingerprint, r3.fault.fingerprint);
        prop_assert_eq!(r.makespan, r3.makespan);
    }
}

/// A machine that dies before the first arrival simply never receives
/// work: nothing is evicted (recovery latency exactly zero), the router
/// places everything on the survivor, and availability still records the
/// downtime.
#[test]
fn failure_before_first_arrival_routes_around_the_dead_machine() {
    let raw: Vec<(u64, u64, u64, u64, u64)> = (0..6).map(|i| (i, 1, 1, 1, 400)).collect();
    let specs = synthetic_jobs(&raw, 4);
    let spec = ClusterSpec::uniform(2, 2)
        .with_placement(Placement::LeastLoaded)
        .with_faults(FaultSpec::none().with_failure(
            0,
            SimTime::ZERO + SimDuration::from_ns(100),
            None,
        ));
    let mut fleet = Cluster::new(spec, Tenant::fleet(4));
    let r = fleet.run_jobs(specs).expect("episode completes");
    assert_eq!(r.jobs_completed, 6);
    assert_eq!(r.fault.jobs_lost, 0);
    assert_eq!(r.fault.failures, 1);
    assert_eq!(r.fault.jobs_replaced, 0, "nothing to evict before arrivals");
    assert_eq!(r.fault.recovery_latency_max, SimDuration::ZERO);
    assert!(r.fault.availability < 1.0);
    assert_eq!(r.diagnostics.outstanding_clamps, 0);
    for job in &r.jobs {
        assert_eq!(job.machines.as_slice(), &[1], "all work on the survivor");
        assert_eq!(job.requeues, 0);
    }
}

/// Killing a machine that holds no work evicts nothing: the fail-stop is
/// bookkeeping only (incarnation bump, downtime interval, zero recovery
/// latency), and the busy machine is untouched.
#[test]
fn idle_machine_failure_evicts_nothing() {
    let raw: Vec<(u64, u64, u64, u64, u64)> = (0..5).map(|i| (0, 2, 1, 1, 300 + i)).collect();
    let specs = synthetic_jobs(&raw, 4);
    // Tenant affinity with a huge spill threshold pins every job (all
    // tenant 0) to its home machine 0; machine 1 stays idle for the
    // whole episode.
    let base = ClusterSpec::uniform(2, 2).with_placement(Placement::TenantAffinity { spill: 1000 });
    let mut healthy = Cluster::new(base.clone(), Tenant::fleet(4));
    let h = healthy.run_jobs(specs.clone()).expect("healthy completes");
    let kill_at = SimTime::ZERO + SimDuration::from_fs(h.makespan.as_fs() / 2);
    let spec = base.with_faults(FaultSpec::none().with_failure(1, kill_at, None));
    let mut fleet = Cluster::new(spec, Tenant::fleet(4));
    let r = fleet.run_jobs(specs).expect("episode completes");
    assert_eq!(r.jobs_completed, 5);
    assert_eq!(r.fault.failures, 1);
    assert_eq!(r.fault.jobs_replaced, 0);
    assert_eq!(r.fault.recovery_latency_max, SimDuration::ZERO);
    assert_eq!(
        r.machines[1].incarnations, 2,
        "engine retired and restarted"
    );
    assert_eq!(r.machines[0].incarnations, 1);
    assert_eq!(
        r.fingerprint, h.fingerprint,
        "idle failure leaves the schedule untouched"
    );
    assert_eq!(r.diagnostics.outstanding_clamps, 0);
}

/// Kill every machine but one mid-run: the in-flight job is evicted,
/// checkpointed at its last completed layer, and finishes on the last
/// survivor — flops conserved, bytes charged, requeue recorded.
#[test]
fn all_but_one_machine_dead_still_serves_everything() {
    let specs = one_heavy_job(3);
    let base = ClusterSpec::uniform(3, 2).with_placement(Placement::LeastLoaded);
    let mut healthy = Cluster::new(base.clone(), Tenant::fleet(1));
    let h = healthy.run_jobs(specs.clone()).expect("healthy completes");
    let half = SimTime::ZERO + SimDuration::from_fs(h.makespan.as_fs() / 2);
    let spec = base.with_faults(
        FaultSpec::none()
            .with_failure(0, half, None)
            .with_failure(1, half, None),
    );
    let mut fleet = Cluster::new(spec, Tenant::fleet(1));
    let r = fleet.run_jobs(specs.clone()).expect("episode completes");
    assert_eq!(r.jobs_completed, 1);
    assert_eq!(r.fault.jobs_lost, 0);
    assert_eq!(r.fault.failures, 2);
    assert_eq!(
        r.fault.jobs_replaced, 1,
        "the in-flight job was evicted once"
    );
    assert!(r.fault.replaced_bytes > 0, "state transfer was charged");
    assert!(r.fault.recovery_latency_max > SimDuration::ZERO);
    assert_eq!(r.jobs[0].requeues, 1);
    assert_eq!(
        r.jobs[0].machines.as_slice(),
        &[0, 2],
        "placed on 0, finished on the survivor"
    );
    assert_eq!(
        r.total_flops,
        specs[0].flops(),
        "flops conserved under eviction"
    );
    assert!(r.makespan > h.makespan, "re-execution costs time");
    assert_eq!(r.diagnostics.outstanding_clamps, 0);
}

/// A machine failure mid-k-split: the lost part re-places (the surviving
/// machine resumes the reduction — numerics proven bit-identical in the
/// split suite), the reduction barrier still clears, and flops are
/// conserved.
#[test]
fn mid_ksplit_failure_resumes_the_reduction() {
    let specs = vec![JobSpec {
        tenant: 0,
        layers: vec![GemmPlusTask::gemm(256, 256, 512, Precision::Fp32)],
        arrival: SimTime::ZERO,
        priority: 0,
        deadline: None,
        gang_width: 2,
    }];
    let base = ClusterSpec::uniform(2, 2).with_split(SplitSpec::new(
        SplitKind::KSplit,
        2 * 64 * 64 * 64,
        2,
    ));
    let mut healthy = Cluster::new(base.clone(), Tenant::fleet(1));
    let h = healthy.run_jobs(specs.clone()).expect("healthy completes");
    assert_eq!(h.splits, 1, "the heavy layer splits");
    let half = SimTime::ZERO + SimDuration::from_fs(h.makespan.as_fs() / 2);
    let spec = base.with_faults(FaultSpec::none().with_failure(1, half, None));
    let mut fleet = Cluster::new(spec, Tenant::fleet(1));
    let r = fleet.run_jobs(specs.clone()).expect("episode completes");
    assert_eq!(r.splits, 1);
    assert_eq!(r.jobs_completed, 1);
    assert_eq!(r.fault.jobs_lost, 0);
    assert_eq!(r.fault.jobs_replaced, 1, "the lost part re-placed");
    assert_eq!(r.jobs[0].requeues, 1);
    assert_eq!(
        r.total_flops,
        specs[0].flops(),
        "split + failover conserves flops"
    );
    assert_eq!(r.diagnostics.outstanding_clamps, 0);
}

/// A recovered machine rejoins the placement set as a cold incarnation
/// and serves post-recovery arrivals; the whole episode stays
/// deterministic.
#[test]
fn recovered_machine_rejoins_and_serves() {
    let mut specs = one_heavy_job(2);
    // Late wave, far past the recovery instant, alternating round-robin.
    for i in 0..4 {
        specs.push(JobSpec {
            tenant: (i % 2) + 1,
            layers: vec![GemmPlusTask::gemm(64, 64, 64, Precision::Fp32)],
            arrival: SimTime::ZERO + SimDuration::from_us(40_000) + SimDuration::from_ns(i as u64),
            priority: 0,
            deadline: None,
            gang_width: 1,
        });
    }
    let spec = ClusterSpec::uniform(2, 2)
        .with_placement(Placement::RoundRobin)
        .with_faults(FaultSpec::none().with_failure(
            1,
            SimTime::ZERO + SimDuration::from_us(1_000),
            Some(SimTime::ZERO + SimDuration::from_us(2_000)),
        ));
    let mut fleet = Cluster::new(spec.clone(), Tenant::fleet(3));
    let r = fleet.run_jobs(specs.clone()).expect("episode completes");
    assert_eq!(r.jobs_completed, 5);
    assert_eq!(r.fault.jobs_lost, 0);
    assert_eq!(r.fault.failures, 1);
    assert_eq!(r.fault.recoveries, 1);
    assert_eq!(r.machines[1].incarnations, 2);
    let late_on_recovered = r
        .jobs
        .iter()
        .filter(|j| j.index >= 1 && j.machines.contains(&1))
        .count();
    assert!(
        late_on_recovered >= 1,
        "round-robin must use the recovered machine for the late wave"
    );
    let mut fresh = Cluster::new(spec, Tenant::fleet(3));
    let r2 = fresh.run_jobs(specs).expect("repeat completes");
    assert_eq!(r.fingerprint, r2.fingerprint);
    assert_eq!(r.fault.fingerprint, r2.fault.fingerprint);
    assert_eq!(r.diagnostics.outstanding_clamps, 0);
}

/// Arrivals during a total outage defer to the scheduled recovery: the
/// job is admitted with its effective arrival at the recovery instant
/// and nothing is lost.
#[test]
fn arrivals_during_total_outage_wait_for_recovery() {
    let down = SimTime::ZERO + SimDuration::from_us(1);
    let up = SimTime::ZERO + SimDuration::from_us(9);
    let specs = vec![JobSpec {
        tenant: 0,
        layers: vec![GemmPlusTask::gemm(64, 64, 64, Precision::Fp32)],
        arrival: SimTime::ZERO + SimDuration::from_us(5),
        priority: 0,
        deadline: None,
        gang_width: 1,
    }];
    let spec =
        ClusterSpec::uniform(1, 2).with_faults(FaultSpec::none().with_failure(0, down, Some(up)));
    let mut fleet = Cluster::new(spec, Tenant::fleet(1));
    let r = fleet.run_jobs(specs).expect("episode completes");
    assert_eq!(r.jobs_completed, 1);
    assert_eq!(r.fault.jobs_lost, 0);
    assert_eq!(r.jobs[0].effective_arrival, up, "deferred to the recovery");
    assert_eq!(r.jobs[0].machines.as_slice(), &[0]);
    assert_eq!(r.diagnostics.outstanding_clamps, 0);
}

/// A total outage with no scheduled recovery cannot serve pending work —
/// the episode must fail loudly, not hang or drop the job.
#[test]
#[should_panic(expected = "no scheduled recovery")]
fn total_outage_without_recovery_panics() {
    let specs = vec![JobSpec {
        tenant: 0,
        layers: vec![GemmPlusTask::gemm(64, 64, 64, Precision::Fp32)],
        arrival: SimTime::ZERO + SimDuration::from_us(5),
        priority: 0,
        deadline: None,
        gang_width: 1,
    }];
    let spec = ClusterSpec::uniform(1, 2).with_faults(FaultSpec::none().with_failure(
        0,
        SimTime::ZERO + SimDuration::from_us(1),
        None,
    ));
    let mut fleet = Cluster::new(spec, Tenant::fleet(1));
    let _ = fleet.run_jobs(specs);
}

/// The autoscaler grows the active set under a dense burst, shrinks it
/// again when the window drains, and never goes below `min_machines`.
/// Standby machines receive no placements while inactive.
#[test]
fn autoscaler_grows_under_burst_and_shrinks_when_idle() {
    let mut specs: Vec<JobSpec> = Vec::new();
    // Dense burst: 20 arrivals 500 ns apart — far above the conservative
    // policy's 8-per-machine window rate.
    for i in 0..20u64 {
        specs.push(JobSpec {
            tenant: (i % 4) as usize,
            layers: vec![GemmPlusTask::gemm(64, 64, 64, Precision::Fp32)],
            arrival: SimTime::ZERO + SimDuration::from_ns(500 * (i + 1)),
            priority: 0,
            deadline: None,
            gang_width: 1,
        });
    }
    // Sparse tail: arrivals 2 ms apart, so the 1 ms window empties
    // between them and the shrink condition holds.
    for i in 0..3u64 {
        specs.push(JobSpec {
            tenant: (i % 4) as usize,
            layers: vec![GemmPlusTask::gemm(64, 64, 64, Precision::Fp32)],
            arrival: SimTime::ZERO + SimDuration::from_us(2_000 * (i + 1)),
            priority: 0,
            deadline: None,
            gang_width: 1,
        });
    }
    let spec = ClusterSpec::uniform(3, 2)
        .with_placement(Placement::LeastLoaded)
        .with_autoscaler(AutoscalerSpec::conservative(1));
    let mut fleet = Cluster::new(spec.clone(), Tenant::fleet(4));
    let r = fleet.run_jobs(specs.clone()).expect("episode completes");
    assert_eq!(r.jobs_completed, 23);
    assert_eq!(r.fault.jobs_lost, 0);
    assert!(r.fault.peak_active >= 2, "the burst must trigger a grow");
    assert!(
        r.fault.scale_events.iter().any(|e| e.grew),
        "no grow event recorded"
    );
    assert!(
        r.fault.scale_events.iter().any(|e| !e.grew),
        "no shrink event recorded"
    );
    assert!(
        r.fault.scale_events.iter().all(|e| e.active_after >= 1),
        "scaled below min_machines"
    );
    // Machines outside the peak active set never received work.
    for job in &r.jobs {
        assert!(job.machines.iter().all(|&m| m < r.fault.peak_active));
    }
    let mut fresh = Cluster::new(spec, Tenant::fleet(4));
    let r2 = fresh.run_jobs(specs).expect("repeat completes");
    assert_eq!(r.fingerprint, r2.fingerprint);
    assert_eq!(r.fault.fingerprint, r2.fault.fingerprint);
    assert_eq!(r.diagnostics.outstanding_clamps, 0);
}

/// An interconnect degradation window makes every transfer charged inside
/// it strictly slower: same trace, same placements, larger interconnect
/// busy time and a later first-migration effective arrival.
#[test]
fn degradation_window_slows_state_transfer() {
    // Round-robin over two machines with one tenant: every other job
    // migrates and pays the interconnect.
    let specs: Vec<JobSpec> = (0..4u64)
        .map(|i| JobSpec {
            tenant: 0,
            layers: vec![GemmPlusTask::gemm(128, 128, 128, Precision::Fp32)],
            arrival: SimTime::ZERO + SimDuration::from_us(i),
            priority: 0,
            deadline: None,
            gang_width: 1,
        })
        .collect();
    let base = ClusterSpec::uniform(2, 2).with_placement(Placement::RoundRobin);
    let mut pristine = Cluster::new(base.clone(), Tenant::fleet(1));
    let p = pristine
        .run_jobs(specs.clone())
        .expect("pristine completes");
    assert!(p.migrations > 0, "round-robin must migrate the tenant");

    let window = DegradationWindow {
        from: SimTime::ZERO,
        until: SimTime::ZERO + SimDuration::from_us(100_000),
        latency_mult: 3,
        bandwidth_div: 4,
    };
    let spec = base.with_faults(FaultSpec::none().with_degradation(window));
    let mut degraded = Cluster::new(spec, Tenant::fleet(1));
    let d = degraded.run_jobs(specs).expect("degraded completes");
    assert_eq!(d.migrations, p.migrations);
    assert!(
        d.interconnect_busy > p.interconnect_busy,
        "divided bandwidth must serialise longer ({:?} vs {:?})",
        d.interconnect_busy,
        p.interconnect_busy
    );
    let first_migrated_p = p.jobs.iter().find(|j| j.migrated).expect("migration");
    let first_migrated_d = d.jobs.iter().find(|j| j.migrated).expect("migration");
    assert!(
        first_migrated_d.effective_arrival > first_migrated_p.effective_arrival,
        "degraded transfer must deliver later"
    );
    assert!(
        d.fault.fingerprint != 0,
        "window events fold into the fault fingerprint"
    );
    assert_eq!(d.fault.jobs_lost, 0);
    assert_eq!(d.diagnostics.outstanding_clamps, 0);
}
