//! Per-job / per-machine interconnect byte accounting and the
//! `Placement::SfcLocality` policy.
//!
//! The contracts under test:
//!
//! * **attribution is consistent** — the per-job byte·link-crossing
//!   totals and the per-machine totals agree exactly, across placements
//!   (including `SfcLocality`), splits and failure storms; on a
//!   two-machine fleet (every transfer crosses exactly one link) they
//!   also equal the raw wire-byte ledger;
//! * **failover charges state transfer exactly once per eviction** —
//!   differential test against a hand-computed byte total for a 2-kill
//!   storm (`replace()` charges nothing on re-placement);
//! * **SfcLocality is deterministic** — same trace, byte-identical
//!   schedule and byte-metric fingerprints on reused and fresh clusters;
//! * **SfcLocality avoids communication** — on the bandwidth-constrained
//!   fleet it attributes strictly fewer interconnect bytes per job than
//!   round-robin/least-loaded/tenant-affinity at equal node count.

use proptest::prelude::*;

use maco_cluster::{Cluster, ClusterSpec, FaultSpec, Placement, SplitKind, SplitSpec};
use maco_core::gemm_plus::GemmPlusTask;
use maco_isa::Precision;
use maco_serve::{JobSpec, Tenant};
use maco_sim::{SimDuration, SimTime};
use maco_workloads::trace::{generate, TraceConfig};

fn synthetic_jobs(raw: &[(u64, u64, u64, u64, u64)], tenants: usize) -> Vec<JobSpec> {
    let mut arrival = SimTime::ZERO;
    raw.iter()
        .map(|&(tenant, dim, layers, width, gap)| {
            arrival += SimDuration::from_ns(200 + gap);
            let d = 32 * (1 + dim);
            JobSpec {
                tenant: tenant as usize % tenants,
                layers: (0..1 + layers)
                    .map(|i| GemmPlusTask::gemm(d, d + 32 * i, d, Precision::Fp32))
                    .collect(),
                arrival,
                priority: (tenant % 4) as u8,
                deadline: None,
                gang_width: 1 + width as usize,
            }
        })
        .collect()
}

/// Every placement policy, the classic three plus the SFC one.
fn placement_of(idx: u64) -> Placement {
    match idx % 4 {
        0 => Placement::RoundRobin,
        1 => Placement::LeastLoaded,
        2 => Placement::TenantAffinity { spill: 2 },
        _ => Placement::SfcLocality,
    }
}

proptest! {
    /// The two attribution views agree exactly — Σ per-job == Σ
    /// per-machine — under every placement (including SfcLocality),
    /// with and without splits, with and without a failure storm. On a
    /// two-machine fleet every transfer crosses exactly one link, so
    /// the attributed total must also equal the raw wire-byte ledger
    /// (the differential check tying the link metric to the
    /// serialisation ledger).
    #[test]
    fn attributed_bytes_partition_the_interconnect_ledger(
        raw in proptest::collection::vec((0u64..6, 0u64..3, 0u64..2, 0u64..3, 0u64..2000), 2..6),
        machines in 2usize..5,
        placement in 0u64..4,
        split in 0u64..2,
        storm in 0u64..2,
        storm_seed in 0u64..1000,
    ) {
        let specs = synthetic_jobs(&raw, 4);
        let mut spec = ClusterSpec::uniform(machines, 2)
            .with_placement(placement_of(placement));
        if split == 1 {
            spec = spec.with_split(SplitSpec::new(SplitKind::KSplit, 2 * 64 * 64 * 64, machines));
        }
        if storm == 1 {
            spec = spec.with_faults(FaultSpec::storm(
                storm_seed,
                machines,
                machines / 2,
                SimTime::ZERO,
                SimTime::ZERO + SimDuration::from_us(5_000),
                Some(SimDuration::from_us(10_000)),
            ));
        }
        let mut fleet = Cluster::new(spec, Tenant::fleet(4));
        let r = fleet.run_jobs(specs).expect("episode completes");
        let per_job: u64 = r.jobs.iter().map(|j| j.interconnect_bytes).sum();
        let per_machine: u64 = r.machine_interconnect_bytes.iter().sum();
        prop_assert_eq!(per_job, per_machine, "job/machine attribution disagree");
        prop_assert_eq!(r.machine_interconnect_bytes.len(), machines);
        if machines == 2 && storm == 0 {
            prop_assert_eq!(per_job, r.interconnect_bytes, "1-link fleet must match raw ledger");
        }
        prop_assert_eq!(r.diagnostics.outstanding_clamps, 0);
    }

    /// SfcLocality is deterministic end to end: reused and fresh clusters
    /// produce byte-identical schedule *and* byte-metric fingerprints.
    #[test]
    fn sfc_locality_is_deterministic(
        raw in proptest::collection::vec((0u64..6, 0u64..3, 0u64..2, 0u64..3, 0u64..2000), 2..5),
        machines in 2usize..6,
    ) {
        let specs = synthetic_jobs(&raw, 4);
        let spec = ClusterSpec::uniform(machines, 2).with_placement(Placement::SfcLocality);
        let mut fleet = Cluster::new(spec.clone(), Tenant::fleet(4));
        let a = fleet.run_jobs(specs.clone()).expect("first run completes");
        let b = fleet.run_jobs(specs.clone()).expect("reused run completes");
        let mut fresh = Cluster::new(spec, Tenant::fleet(4));
        let c = fresh.run_jobs(specs).expect("fresh run completes");
        prop_assert_eq!(a.fingerprint, b.fingerprint);
        prop_assert_eq!(a.fingerprint, c.fingerprint);
        prop_assert_eq!(a.interconnect_fingerprint, b.interconnect_fingerprint);
        prop_assert_eq!(a.interconnect_fingerprint, c.interconnect_fingerprint);
        prop_assert_eq!(a.jobs_completed as usize, raw.len());
    }
}

/// Satellite bugfix audit: a 2-kill storm against one long-running job.
/// Each eviction charges `migration_bytes + remaining weight bytes`
/// exactly once at the fail instant; re-placement (`replace()`) only
/// attributes those bytes (link-weighted, once the destination is
/// known) and adds no wire bytes. The whole episode's ledgers therefore
/// equal the hand-computed totals of the two state transfers — any
/// double charge (or a missed one) breaks the equalities.
#[test]
fn two_kill_storm_bytes_match_the_hand_computed_total() {
    // One single-layer 1024³ FP32 job: weight bytes = k·n·4 = 4 MiB, and
    // with zero completed layers every eviction moves the whole layer.
    let specs = vec![JobSpec {
        tenant: 0,
        layers: vec![GemmPlusTask::gemm(1024, 1024, 1024, Precision::Fp32)],
        arrival: SimTime::ZERO,
        priority: 0,
        deadline: None,
        gang_width: 2,
    }];
    let base = ClusterSpec::uniform(3, 2).with_placement(Placement::LeastLoaded);

    // Sanity-check the kill windows against the healthy makespan: the
    // first kill at 10 µs catches the job on machine 0; the second at
    // 1 ms lands after the ~220 µs state transfer re-placed it on
    // machine 1 but long before the multi-ms layer finishes.
    let healthy = Cluster::new(base.clone(), Tenant::fleet(1))
        .run_jobs(specs.clone())
        .expect("healthy completes");
    assert!(healthy.makespan > SimDuration::from_us(2_000));

    let kill0 = SimTime::ZERO + SimDuration::from_us(10);
    let kill1 = SimTime::ZERO + SimDuration::from_us(1_000);
    let spec = base.with_faults(
        FaultSpec::none()
            .with_failure(0, kill0, None)
            .with_failure(1, kill1, None),
    );
    let mut fleet = Cluster::new(spec, Tenant::fleet(1));
    let r = fleet.run_jobs(specs.clone()).expect("storm completes");

    assert_eq!(r.fault.jobs_lost, 0);
    assert_eq!(r.jobs_completed, 1);
    assert_eq!(r.fault.failures, 2);
    assert_eq!(r.fault.jobs_replaced, 2, "each kill evicts the job once");
    assert_eq!(r.jobs[0].requeues, 2);
    assert_eq!(r.total_flops, specs[0].flops());

    // Hand-computed wire bytes: two evictions, each migration context
    // (1 MiB) plus the full single layer's weights (1024·1024·4 B).
    // Nothing else in the episode touches the interconnect (one tenant,
    // first placement is not a migration, no splits, re-placement
    // charges no wire bytes).
    let per_eviction = (1u64 << 20) + 1024 * 1024 * 4;
    assert_eq!(r.fault.replaced_bytes, 2 * per_eviction);
    assert_eq!(
        r.interconnect_bytes,
        2 * per_eviction,
        "double/missed charge"
    );
    // Hand-computed link crossings on the 2-wide machine grid
    // (0=(0,0), 1=(1,0), 2=(0,1)): kill 0 → re-placed on 1 (1 link);
    // kill 1 → re-placed on 2, the only survivor (2 links).
    assert_eq!(r.jobs[0].interconnect_bytes, 3 * per_eviction);
    // Attribution: each eviction is charged to its failed hub machine.
    assert_eq!(
        r.machine_interconnect_bytes,
        vec![per_eviction, 2 * per_eviction, 0]
    );
    assert_eq!(r.diagnostics.outstanding_clamps, 0);
}

/// On the bandwidth-constrained fleet serving the mixed burst,
/// SfcLocality attributes strictly fewer interconnect bytes per job
/// (byte·link crossings) than every classic policy at equal node count
/// (the tentpole's fleet-side acceptance bar, pinned at scale by the
/// explore experiment). Eight machines with 4-way splits so the curve
/// has room to pack each fan-out onto adjacent grid cells.
#[test]
fn sfc_locality_moves_fewer_bytes_than_every_classic_policy() {
    let config = TraceConfig {
        requests: 48,
        ..TraceConfig::fleet(0xF1EE7)
    };
    let tenants = Tenant::fleet(config.tenants);
    let trace = generate(&config);
    let bytes_per_job = |placement: Placement| {
        let spec = ClusterSpec::bandwidth_constrained(8, 4)
            .with_split(SplitSpec::new(SplitKind::KSplit, 1_000_000_000, 4))
            .with_placement(placement);
        let mut fleet = Cluster::new(spec, tenants.clone());
        let r = fleet.run_trace(&trace).expect("episode completes");
        assert_eq!(r.fault.jobs_lost, 0);
        (r.interconnect_bytes_per_job(), r.migrations)
    };
    let (sfc, sfc_migrations) = bytes_per_job(Placement::SfcLocality);
    for classic in Placement::ALL {
        let (other, other_migrations) = bytes_per_job(classic);
        assert!(
            sfc < other,
            "SfcLocality must move strictly fewer bytes/job than {} ({sfc:.1} vs {other:.1})",
            classic.name()
        );
        assert!(
            sfc_migrations <= other_migrations,
            "SfcLocality migrated more than {} ({sfc_migrations} vs {other_migrations})",
            classic.name()
        );
    }
}
