//! The fleet: a front-end router over many machines, composed onto one
//! global virtual-time timeline.
//!
//! Every machine runs the *same* co-simulation a standalone
//! [`maco_serve::Server`] runs — a [`maco_serve::Engine`] driving that
//! machine's [`MacoSystem`] through the reentrant
//! `begin_gemm`/`step_gemm` core API — and the cluster merges the
//! machines' event streams: the global loop always processes the minimum
//! of (next fault event, next unrouted fleet arrival, next re-placement,
//! every machine's next event), breaking ties in exactly that order (so
//! fault and routing state are current before any same-instant machine
//! step). The machine minimum comes from a lazy-deletion min-heap of
//! machine cursors `(time, machine)` re-keyed only for machines whose
//! event stream actually changed (the one just advanced, the ones just
//! routed to); a popped cursor is valid iff it still equals its machine's
//! [`Engine::next_event`], so stale entries cost one O(log n) discard
//! instead of a per-step fleet scan. Machines
//! share no simulated hardware, so advancing one machine never perturbs
//! another; all cross-machine coupling flows through the interconnect
//! cost model (migration transfers delay arrivals, k-split all-reduces
//! delay completions) and through the router's load accounting, both of
//! which are pure functions of previously processed events. That is what
//! makes the fleet fingerprint byte-identical across same-seed runs.
//!
//! Multi-machine engines admit work at the *router's horizon*: a
//! completion whose simulated time leaps past the next unrouted fleet
//! arrival (or fault event, or pending re-placement) stops its
//! queued-arrival drain there (see [`Engine::advance`]'s `bound`), so
//! machine-local admission order always equals `(arrival, push order)`;
//! arrivals beyond the horizon are admitted later at their own event
//! times, with the time-aware node pool keeping freed nodes invisible
//! before their free instants. A one-machine fault-free cluster skips the
//! horizon entirely — with no placement freedom the router routes eagerly
//! — and is therefore bit-identical to a standalone
//! [`maco_serve::Server`] (tested, including under timestamp tie storms).
//!
//! # Failure model
//!
//! A [`crate::spec::FaultSpec`] schedules deterministic fail-stops,
//! recoveries and interconnect degradation windows as first-class events
//! on the global timeline, processed *before* same-instant arrivals. A
//! fail-stop evicts the machine's in-flight and queued jobs (an
//! [`maco_serve::EvictedJob`] carries the un-served remainder: a DNN
//! stream restarts from its last completed layer, a split part from its
//! layer start), retires the engine incarnation, and re-places each
//! remainder on a surviving machine after charging the state transfer
//! (migration context + remaining weight bytes) through the
//! interconnect. Completions the event core already committed stand even
//! when timestamped past the fail instant — the core processes a gang's
//! completion batch atomically, exactly as it leaps past routing
//! horizons. The fail-stop contract is that **no admitted job is ever
//! lost**: [`crate::report::FaultReport::jobs_lost`] is always 0, and
//! the fault layer folds every event into its own fingerprint (separate
//! from the schedule fingerprint, which stays bit-identical for
//! fault-free runs). An optional [`AutoscalerSpec`] grows/shrinks the
//! *active* placement set against sliding arrival-rate and deadline-miss
//! windows; draining a machine only stops new placements — queued work
//! finishes where it is.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use maco_core::system::MacoSystem;
use maco_noc::sfc::hilbert_order;
use maco_noc::topology::MeshShape;
use maco_serve::{validate_spec, Engine, JobOutcome, JobSpec, ServeReport, Tenant};
use maco_sim::{FxHashMap, LatencyBandwidthResource, SimDuration, SimTime};
use maco_telemetry::{Log2Histogram, TraceSink, ROUTER_TRACK, SCHED_ROW};
use maco_workloads::trace::TraceRequest;

use crate::report::{
    fold_fingerprint, merge_serve_reports, ClusterDiagnostics, ClusterReport, FaultReport,
    JobRecord, MachineReport, ScaleEvent,
};
use crate::spec::{AutoscalerSpec, ClusterSpec, DegradationWindow, Placement};
use crate::split::split_job;

/// Errors a fleet episode can surface (the per-machine co-simulation's).
pub type ClusterError = maco_serve::ServeError;

/// The fleet: a [`ClusterSpec`] instantiated into real machines plus the
/// fleet-wide tenant registry (every tenant is registered on every
/// machine; placement decides where its jobs actually run).
pub struct Cluster {
    spec: ClusterSpec,
    tenants: Vec<Tenant>,
    systems: Vec<MacoSystem>,
    sink: TraceSink,
}

impl Cluster {
    /// Instantiates the fleet.
    ///
    /// # Panics
    ///
    /// Panics on an empty machine list or tenant fleet (and propagates the
    /// machine configurations' own validation).
    pub fn new(spec: ClusterSpec, tenants: Vec<Tenant>) -> Self {
        assert!(!spec.machines.is_empty(), "need at least one machine");
        assert!(!tenants.is_empty(), "need at least one tenant");
        let systems = spec
            .machines
            .iter()
            .map(|m| MacoSystem::new(m.system.clone()))
            .collect();
        Cluster {
            spec,
            tenants,
            systems,
            sink: TraceSink::off(),
        }
    }

    /// Attaches a telemetry sink recording fleet events (routing,
    /// migrations, faults, evictions, re-placements, autoscaling) and
    /// every machine engine's job-lifecycle events onto one shared,
    /// globally-ordered record stream. [`TraceSink::off`] (the default)
    /// records nothing; tracing never perturbs simulated outcomes — the
    /// schedule and fault fingerprints are bit-identical either way.
    pub fn set_trace_sink(&mut self, sink: TraceSink) {
        self.sink = sink;
    }

    /// The `(track id, display name)` pairs for Chrome-trace export
    /// ([`maco_telemetry::Trace::to_chrome_json`]): one track per machine
    /// (by fleet index, named from the spec) plus the router track.
    pub fn track_labels(&self) -> Vec<(u32, String)> {
        let mut tracks: Vec<(u32, String)> = self
            .spec
            .machines
            .iter()
            .enumerate()
            .map(|(i, m)| (i as u32, m.name.clone()))
            .collect();
        tracks.push((ROUTER_TRACK, "router".to_string()));
        tracks
    }

    /// The fleet declaration.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// The fleet-wide tenant registry.
    pub fn tenants(&self) -> &[Tenant] {
        &self.tenants
    }

    /// Number of machines.
    pub fn machines(&self) -> usize {
        self.systems.len()
    }

    /// Total compute nodes across the fleet.
    pub fn total_nodes(&self) -> usize {
        self.spec.total_nodes()
    }

    /// Serves a generated trace (see [`maco_workloads::trace`]) across the
    /// fleet: converts each request into a job and runs the episode to
    /// completion.
    ///
    /// # Errors
    ///
    /// Propagates [`ClusterError`]s from the per-machine co-simulations.
    pub fn run_trace(&mut self, trace: &[TraceRequest]) -> Result<ClusterReport, ClusterError> {
        self.run_jobs(trace.iter().map(JobSpec::from_request).collect())
    }

    /// Runs one fleet episode over `specs` (arrival-sorted internally)
    /// until every routed job has completed on its machine(s), every
    /// pending reduction has drained, every scheduled fault event has
    /// been processed and every evicted remainder has been re-placed and
    /// finished.
    ///
    /// Each machine's [`maco_serve::ServeConfig::queue_capacity`] must
    /// accommodate its routed backlog: a machine-level admission overflow
    /// would desynchronise the fleet's job accounting, so capacities are
    /// validated *before* the episode starts, and an undersized machine is a
    /// clear, early panic naming the machine — never a mid-episode
    /// accounting desync. (Re-placement cannot exceed the bound: a job
    /// occupies one machine's queue at a time.)
    ///
    /// # Errors
    ///
    /// Propagates [`ClusterError`]s from the per-machine co-simulations.
    ///
    /// # Panics
    ///
    /// Panics when a machine's queue capacity cannot hold the worst-case
    /// routed backlog (naming the offending machine), when the
    /// [`crate::spec::FaultSpec`] or [`AutoscalerSpec`] is invalid for
    /// this fleet, or when every machine is dead with no scheduled
    /// recovery while work is still pending.
    pub fn run_jobs(&mut self, mut specs: Vec<JobSpec>) -> Result<ClusterReport, ClusterError> {
        specs.sort_by_key(|s| s.arrival);
        self.validate_capacity(&specs);
        self.spec.faults.validate(self.spec.machines.len());
        if let Some(a) = self.spec.autoscaler {
            a.validate(self.spec.machines.len());
        }
        let machines = self.systems.len();
        for sys in &mut self.systems {
            sys.reset_shared_resources();
        }
        let mut engines: Vec<Engine> = self
            .spec
            .machines
            .iter()
            .map(|m| Engine::new(m.system.nodes, &self.tenants, &m.serve))
            .collect();
        for (i, engine) in engines.iter_mut().enumerate() {
            engine.set_trace(self.sink.clone(), i as u32);
        }
        let mut ep = FleetEpisode::new(&self.spec, self.tenants.len());
        ep.sink = self.sink.clone();

        // A fault-free fleet of one has no routing freedom: every job
        // lands on machine 0, nothing migrates, nothing splits, nothing
        // is ever evicted. Routing eagerly is therefore
        // decision-identical to lazy routing — and it lets the engine run
        // with no external horizon, which makes the one-machine cluster
        // reproduce the standalone `Server` schedule bit for bit (the
        // contract the equivalence tests pin) even at the contention
        // corners where a bounded arrival drain would reorder scheduling
        // attempts.
        let mut cursor = 0usize;
        let mut pending = VecDeque::from(specs);
        if machines == 1 && self.spec.faults.is_empty() && self.spec.autoscaler.is_none() {
            while let Some(spec) = pending.pop_front() {
                ep.route(&self.spec, &self.tenants, &mut engines, spec, cursor);
                cursor += 1;
            }
        }

        // The global event merge: process the minimum of (next fault
        // event, next fleet arrival, next re-placement, every machine's
        // next event), ties broken fault < arrival < re-placement <
        // machine step so router state is current before any same-instant
        // step — and so a recovery scheduled at the instant a deferred
        // re-placement wakes is processed first (the deferral's
        // termination argument). With no faults and no re-placements this
        // reduces exactly to the fault-free arrival-vs-machine merge.
        loop {
            let fault = ep.faults.front().map(|f| f.at);
            let arrival = pending.front().map(|s| s.arrival);
            let reroute = ep.reroutes.peek().map(|Reverse(r)| r.at);
            let machine = loop {
                match ep.cursors.peek() {
                    None => break None,
                    Some(&Reverse(cur @ (t, m))) => {
                        if engines[m].next_event() == Some(t) {
                            break Some(cur);
                        }
                        ep.cursors.pop();
                    }
                }
            };
            let mt = machine.map(|(t, _)| t);
            let le = |a: Option<SimTime>, b: Option<SimTime>| match (a, b) {
                (Some(x), Some(y)) => x <= y,
                (Some(_), None) => true,
                (None, _) => false,
            };
            if fault.is_some() && le(fault, arrival) && le(fault, reroute) && le(fault, mt) {
                let ev = ep.faults.pop_front().expect("peeked above");
                match ev.kind {
                    FaultEventKind::Fail(i) => ep.fail(
                        &self.spec,
                        &self.tenants,
                        &mut engines,
                        &mut self.systems,
                        i,
                        ev.at,
                    ),
                    FaultEventKind::Recover(i) => ep.recover(i, ev.at),
                    FaultEventKind::DegradeStart(d) => ep.degrade(d, true, ev.at),
                    FaultEventKind::DegradeEnd(d) => ep.degrade(d, false, ev.at),
                }
            } else if arrival.is_some() && le(arrival, reroute) && le(arrival, mt) {
                let spec = pending.pop_front().expect("peeked above");
                let index = cursor;
                cursor += 1;
                ep.route(&self.spec, &self.tenants, &mut engines, spec, index);
            } else if reroute.is_some() && le(reroute, mt) {
                let Reverse(r) = ep.reroutes.pop().expect("peeked above");
                ep.replace(&self.spec, &mut engines, r);
            } else if let Some((_, i)) = machine {
                ep.cursors.pop();
                let horizon = [fault, arrival, reroute].into_iter().flatten().min();
                if let Some(outcome) = engines[i].advance(&mut self.systems[i], horizon)? {
                    ep.complete(i, outcome);
                }
                ep.rekey(&engines[i], i);
            } else {
                break;
            }
        }
        debug_assert!(ep.reductions.is_empty(), "unfinished reductions");
        debug_assert!(ep.reroutes.is_empty(), "unplaced re-routes");

        let mut retired = std::mem::take(&mut ep.retired);
        let machine_reports: Vec<MachineReport> = engines
            .into_iter()
            .enumerate()
            .zip(&self.systems)
            .zip(&self.spec.machines)
            .map(|(((i, engine), system), mspec)| {
                let mut incs = std::mem::take(&mut retired[i]);
                incs.push(engine.finish(system));
                MachineReport {
                    name: mspec.name.clone(),
                    nodes: mspec.system.nodes,
                    incarnations: incs.len() as u32,
                    serve: merge_serve_reports(incs),
                }
            })
            .collect();
        let mut fp = ep.fingerprint;
        let mut makespan = ep.last_finish;
        for m in &machine_reports {
            fp = fold_fingerprint(fp, m.serve.fingerprint);
            makespan = makespan.max(SimTime::ZERO + m.serve.makespan);
        }
        fp = fold_fingerprint(fp, makespan.as_fs());

        // Availability: alive machine-time over makespan × fleet size,
        // open downtime intervals (no recovery) clipped at the makespan.
        let span = makespan.since(SimTime::ZERO);
        let mut down_total: u128 = 0;
        for md in &ep.downs {
            for &(start, end) in md {
                let e = end.map_or(makespan, |t| t.max(SimTime::ZERO).min(makespan));
                let s = start.min(makespan);
                down_total += u128::from(e.saturating_since(s).as_fs());
            }
        }
        let availability = if span.is_zero() {
            1.0
        } else {
            let capacity = u128::from(span.as_fs()) * machines as u128;
            (1.0 - down_total as f64 / capacity as f64).clamp(0.0, 1.0)
        };
        let (rl_max, rl_mean) = if ep.recovery_latencies.is_empty() {
            (SimDuration::ZERO, SimDuration::ZERO)
        } else {
            let max = ep
                .recovery_latencies
                .iter()
                .copied()
                .fold(SimDuration::ZERO, SimDuration::max);
            let sum: u64 = ep.recovery_latencies.iter().map(|d| d.as_fs()).sum();
            (
                max,
                SimDuration::from_fs(sum / ep.recovery_latencies.len() as u64),
            )
        };
        let jobs_lost = ep.records.len() as u64 - ep.jobs_completed - ep.jobs_rejected;
        let mut latency_hist = Log2Histogram::new();
        for rec in &ep.records {
            if let Some(lat) = rec.latency() {
                latency_hist.record(lat.as_fs() / maco_sim::time::FS_PER_NS);
            }
        }
        let fault = FaultReport {
            failures: ep.failures,
            recoveries: ep.recoveries,
            jobs_replaced: ep.jobs_replaced,
            replaced_bytes: ep.replaced_bytes,
            jobs_lost,
            availability,
            recovery_latency_max: rl_max,
            recovery_latency_mean: rl_mean,
            goodput_flops: ep.goodput_flops,
            deadline_misses: ep.deadline_misses,
            scale_events: ep.scale_events,
            peak_active: ep.peak_active,
            fingerprint: ep.fault_fp,
        };
        // The byte-metric fingerprint: every job's attributed bytes in
        // record order, then every machine's total — pinned by the
        // `placement_sfc` perf scenario.
        let mut icn_fp = 0u64;
        for rec in &ep.records {
            icn_fp = fold_fingerprint(icn_fp, rec.interconnect_bytes);
        }
        for &b in &ep.machine_bytes {
            icn_fp = fold_fingerprint(icn_fp, b);
        }
        Ok(ClusterReport {
            jobs: ep.records,
            jobs_completed: ep.jobs_completed,
            jobs_rejected: ep.jobs_rejected,
            makespan: span,
            total_flops: machine_reports.iter().map(|m| m.serve.total_flops).sum(),
            interconnect_bytes: ep.icn.bandwidth().bytes_transferred(),
            interconnect_busy: ep.icn.bandwidth().busy_time(),
            machine_interconnect_bytes: ep.machine_bytes,
            interconnect_fingerprint: icn_fp,
            migrations: ep.migrations,
            splits: ep.splits,
            machines: machine_reports,
            fault,
            diagnostics: ep.diagnostics,
            latency_hist,
            fingerprint: fp,
        })
    }

    /// Pre-flight admission-capacity check: every machine must be able to
    /// hold the worst-case routed backlog, i.e. every admissible job in
    /// the episode (placement is load-dependent, so LeastLoaded and
    /// spilling TenantAffinity can in principle send *all* jobs to one
    /// machine; a split contributes at most one part per machine per
    /// job, and a re-placed remainder occupies only one machine at a
    /// time). An undersized queue would otherwise surface as a
    /// machine-level admission rejection deep inside the episode, where
    /// it desynchronises the slot accounting — here it is an early,
    /// attributable error instead.
    ///
    /// # Panics
    ///
    /// Panics naming the first offending machine.
    fn validate_capacity(&self, specs: &[JobSpec]) {
        let admissible = specs
            .iter()
            .filter(|s| validate_spec(self.tenants.len(), s).is_ok())
            .count();
        for (i, m) in self.spec.machines.iter().enumerate() {
            assert!(
                m.serve.queue_capacity >= admissible,
                "machine {i} ({}) queue_capacity {} cannot hold the episode's worst-case \
                 routed backlog of {admissible} jobs; raise ServeConfig::queue_capacity on \
                 that machine or shard the trace",
                m.name,
                m.serve.queue_capacity,
            );
        }
    }
}

/// An unfinished data-parallel reduction barrier.
struct Reduction {
    parts_left: usize,
    /// Latest part completion so far.
    end: SimTime,
    /// All-reduce bytes charged when the barrier clears (zero = m-split).
    reduce_bytes: u64,
}

/// What kind of fault-schedule event fired.
#[derive(Debug, Clone, Copy)]
enum FaultEventKind {
    /// Machine fail-stop.
    Fail(usize),
    /// Machine recovery (fresh, cold incarnation rejoins the fleet).
    Recover(usize),
    /// Degradation window (by index into the spec) opens.
    DegradeStart(usize),
    /// Degradation window (by index into the spec) closes.
    DegradeEnd(usize),
}

/// One scheduled fault event on the global timeline. Built once from the
/// [`crate::spec::FaultSpec`], stably sorted by time (spec order breaks
/// ties) and drained front-to-back by the merge loop.
struct FaultEvent {
    at: SimTime,
    kind: FaultEventKind,
}

/// A pending re-placement: an evicted remainder (or a deferred arrival
/// that found no eligible machine) waiting for its effective re-arrival
/// instant on the global timeline. Ordered by `(at, seq)` so equal-time
/// re-placements keep eviction order.
struct ReRoute {
    at: SimTime,
    seq: u64,
    rec: usize,
    spec: JobSpec,
    /// `(source machine, wire bytes)` of the eviction state transfer
    /// that produced this re-route — attributed (link-weighted) once the
    /// destination is known in `replace()`. `None` for deferred
    /// arrivals, which moved no state.
    xfer: Option<(usize, u64)>,
}

impl PartialEq for ReRoute {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl Eq for ReRoute {}
impl PartialOrd for ReRoute {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ReRoute {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Per-machine mapping from the engine's admission-ordered job ids back
/// to fleet record indices.
///
/// Routed jobs enter the `pending` min-heap keyed `(effective arrival,
/// route order)` — exactly the order the machine engine admits them in
/// (its push contract guarantees no pushed arrival predates an admitted
/// one, so heap order *is* admission order). Ranks are materialised
/// lazily: when job `i` completes, the heap is drained up to slot `i`.
/// Every job with id ≤ `i` was already routed by then, and any later
/// route keys strictly after the drained prefix, so the prefix is final —
/// each slot costs one O(log n) heap pop instead of the old O(n)
/// backward-scan sorted insert.
#[derive(Default)]
struct SlotMap {
    /// Routed-but-not-ranked jobs: `(effective arrival, route seq, record)`.
    pending: BinaryHeap<Reverse<(SimTime, u64, usize)>>,
    /// Monotone route counter — the stable tiebreak for equal arrivals.
    seq: u64,
    /// Slot `i` = the machine engine's job `i`: `(effective arrival,
    /// record index)`.
    assigned: Vec<(SimTime, usize)>,
}

impl SlotMap {
    /// The `(effective arrival, record)` of machine-local job `id`,
    /// materialising ranks up to `id` on demand.
    ///
    /// # Panics
    ///
    /// Panics if the engine reports a job that was never routed.
    fn resolve(&mut self, id: usize) -> (SimTime, usize) {
        while self.assigned.len() <= id {
            let Reverse((at, _, rec)) = self
                .pending
                .pop()
                .expect("engine completed a job that was never routed");
            self.assigned.push((at, rec));
        }
        self.assigned[id]
    }
}

/// Ranks `machines` fleet positions along a generalized Hilbert curve
/// over the near-square grid `cols × rows` with `cols = ⌈√machines⌉`
/// (machine `m` at grid cell `(m % cols, m / cols)` — rack/row order).
/// Returns `(rank, order, cols)`: `rank[m]` is machine `m`'s curve
/// position, `order[r]` the machine at curve position `r`, and `cols`
/// the grid width (the byte metrics count link crossings on this same
/// grid). Cells past the last machine are skipped, so rank and order
/// are permutations of `0..machines`.
fn fleet_curve(machines: usize) -> (Vec<usize>, Vec<usize>, usize) {
    let mut cols: usize = 1;
    while cols * cols < machines {
        cols += 1;
    }
    let rows = machines.div_ceil(cols.max(1)).max(1);
    let (Ok(c), Ok(r)) = (u8::try_from(cols), u8::try_from(rows)) else {
        // Fleets beyond a 255-wide grid keep identity order.
        let id: Vec<usize> = (0..machines).collect();
        return (id.clone(), id, cols);
    };
    let mut rank = vec![0usize; machines];
    let mut order = Vec::with_capacity(machines);
    for cell in hilbert_order(MeshShape::new(c, r)) {
        let m = usize::from(cell.y) * cols + usize::from(cell.x);
        if m < machines {
            rank[m] = order.len();
            order.push(m);
        }
    }
    (rank, order, cols)
}

/// Mutable router state of one fleet episode.
struct FleetEpisode {
    icn: LatencyBandwidthResource,
    /// Per machine: routed-minus-completed GEMM flops.
    outstanding: Vec<u64>,
    /// Per tenant: the machine its latest job ran on.
    tenant_home: Vec<Option<usize>>,
    /// Round-robin cursor.
    rr: usize,
    /// Per machine: the admission-slot → fleet-record mapping (reset on
    /// fail-stop together with the engine incarnation).
    slots: Vec<SlotMap>,
    /// Lazy-deletion min-heap of machine cursors `(next event, machine)`
    /// driving the global merge; see [`FleetEpisode::rekey`].
    cursors: BinaryHeap<Reverse<(SimTime, usize)>>,
    records: Vec<JobRecord>,
    /// Per record: the job's relative deadline (parallel to `records`),
    /// for fleet-level SLO/goodput accounting.
    deadlines: Vec<Option<SimDuration>>,
    /// Record index → pending reduction barrier, for split jobs.
    reductions: FxHashMap<usize, Reduction>,
    jobs_completed: u64,
    jobs_rejected: u64,
    migrations: u64,
    splits: u64,
    /// Per machine: attributed interconnect traffic in byte·link
    /// crossings over the fleet grid, charged to the transfer's hub —
    /// the old home for a migration, the scatter / all-reduce anchor,
    /// the failed machine for an eviction. Sums to the per-job totals
    /// in `records`.
    machine_bytes: Vec<u64>,
    /// Per machine: its rank along the fleet space-filling curve (a
    /// generalized Hilbert walk of the near-square machine grid). Pure
    /// precomputed data, consulted only by [`Placement::SfcLocality`].
    sfc_rank: Vec<usize>,
    /// Curve position → machine (inverse permutation of `sfc_rank`).
    sfc_order: Vec<usize>,
    /// Width of the near-square machine grid behind `sfc_rank` — also
    /// the topology the byte metrics count link crossings on.
    grid_cols: usize,
    last_finish: SimTime,
    fingerprint: u64,

    // ---- failure / elasticity state ----
    /// Scheduled fault events, time-sorted, drained front-to-back.
    faults: VecDeque<FaultEvent>,
    /// The spec's degradation windows (by index).
    degradations: Vec<DegradationWindow>,
    /// Which degradation windows are currently open.
    win_active: Vec<bool>,
    /// Product of open windows' latency multipliers (1 = pristine).
    lat_mult: u64,
    /// Product of open windows' bandwidth divisors (1 = pristine).
    bw_div: u64,
    /// Per machine: not currently failed.
    alive: Vec<bool>,
    /// Per machine: in the autoscaler's active placement set (all true
    /// without an autoscaler).
    active: Vec<bool>,
    /// Every machine alive *and* active — the fast path that keeps
    /// fault-free routing bit-identical to the pre-fault router.
    full_fleet: bool,
    /// Per machine: serve reports of retired (failed) incarnations.
    retired: Vec<Vec<ServeReport>>,
    /// Pending re-placements, ordered `(effective re-arrival, seq)`.
    reroutes: BinaryHeap<Reverse<ReRoute>>,
    reroute_seq: u64,
    /// Per machine: downtime intervals `(failed_at, recovered_at)`;
    /// `None` end = still down at episode end (clipped to makespan).
    downs: Vec<Vec<(SimTime, Option<SimTime>)>>,
    failures: u64,
    recoveries: u64,
    jobs_replaced: u64,
    replaced_bytes: u64,
    /// Per processed fail-stop: fail instant → last evicted remainder's
    /// effective re-arrival (zero when nothing was evicted).
    recovery_latencies: Vec<SimDuration>,
    goodput_flops: u64,
    deadline_misses: u64,
    scaler: Option<AutoscalerSpec>,
    /// Sliding window of routed-arrival instants (autoscaler only).
    win_arrivals: VecDeque<SimTime>,
    /// Sliding window of fleet-level deadline-miss instants.
    win_misses: VecDeque<SimTime>,
    /// Last autoscaler action (cooldown gate; capacity replacement after
    /// a failure bypasses it).
    last_scale: Option<SimTime>,
    scale_events: Vec<ScaleEvent>,
    peak_active: usize,
    diagnostics: ClusterDiagnostics,
    /// The failure layer's own order-sensitive event fold.
    fault_fp: u64,
    /// Telemetry sink for router/fleet events (off by default; overwritten
    /// with the cluster's sink at episode start). Purely observational —
    /// never consulted for any routing or fault decision.
    sink: TraceSink,
}

impl FleetEpisode {
    /// Fresh episode state for one `run_jobs` call: compiles the fault
    /// schedule into a time-sorted event queue and initialises the
    /// autoscaler's active set (`min_machines` actives; the rest standby).
    fn new(spec: &ClusterSpec, tenants: usize) -> Self {
        let machines = spec.machines.len();
        let mut events: Vec<FaultEvent> = Vec::new();
        for f in &spec.faults.machine_faults {
            events.push(FaultEvent {
                at: f.at,
                kind: FaultEventKind::Fail(f.machine),
            });
            if let Some(r) = f.recover_at {
                events.push(FaultEvent {
                    at: r,
                    kind: FaultEventKind::Recover(f.machine),
                });
            }
        }
        for (d, w) in spec.faults.degradations.iter().enumerate() {
            events.push(FaultEvent {
                at: w.from,
                kind: FaultEventKind::DegradeStart(d),
            });
            events.push(FaultEvent {
                at: w.until,
                kind: FaultEventKind::DegradeEnd(d),
            });
        }
        events.sort_by_key(|e| e.at);
        let (sfc_rank, sfc_order, grid_cols) = fleet_curve(machines);
        let scaler = spec.autoscaler;
        let active: Vec<bool> = (0..machines)
            .map(|m| scaler.is_none_or(|a| m < a.min_machines))
            .collect();
        let active_n = active.iter().filter(|&&a| a).count();
        FleetEpisode {
            icn: LatencyBandwidthResource::new(spec.interconnect.latency, spec.interconnect.gbps),
            outstanding: vec![0; machines],
            tenant_home: vec![None; tenants],
            rr: 0,
            slots: (0..machines).map(|_| SlotMap::default()).collect(),
            cursors: BinaryHeap::new(),
            records: Vec::new(),
            deadlines: Vec::new(),
            reductions: FxHashMap::default(),
            jobs_completed: 0,
            jobs_rejected: 0,
            migrations: 0,
            splits: 0,
            machine_bytes: vec![0; machines],
            sfc_rank,
            sfc_order,
            grid_cols,
            last_finish: SimTime::ZERO,
            fingerprint: 0,
            faults: VecDeque::from(events),
            degradations: spec.faults.degradations.clone(),
            win_active: vec![false; spec.faults.degradations.len()],
            lat_mult: 1,
            bw_div: 1,
            alive: vec![true; machines],
            full_fleet: active_n == machines,
            active,
            retired: vec![Vec::new(); machines],
            reroutes: BinaryHeap::new(),
            reroute_seq: 0,
            downs: vec![Vec::new(); machines],
            failures: 0,
            recoveries: 0,
            jobs_replaced: 0,
            replaced_bytes: 0,
            recovery_latencies: Vec::new(),
            goodput_flops: 0,
            deadline_misses: 0,
            scaler,
            win_arrivals: VecDeque::new(),
            win_misses: VecDeque::new(),
            last_scale: None,
            scale_events: Vec::new(),
            peak_active: active_n,
            diagnostics: ClusterDiagnostics::default(),
            fault_fp: 0,
            sink: TraceSink::off(),
        }
    }

    /// A machine can receive new placements iff it is alive and in the
    /// active set.
    fn eligible(&self, m: usize) -> bool {
        self.alive[m] && self.active[m]
    }

    fn eligible_count(&self) -> usize {
        (0..self.alive.len()).filter(|&m| self.eligible(m)).count()
    }

    fn update_full_fleet(&mut self) {
        self.full_fleet = (0..self.alive.len()).all(|m| self.eligible(m));
    }

    /// Earliest still-scheduled recovery — the wake instant for work that
    /// finds every machine dead.
    fn next_recovery(&self) -> Option<SimTime> {
        self.faults.iter().find_map(|e| match e.kind {
            FaultEventKind::Recover(_) => Some(e.at),
            _ => None,
        })
    }

    /// Appends a record and its (parallel) deadline entry.
    fn push_record(&mut self, record: JobRecord, deadline: Option<SimDuration>) {
        self.records.push(record);
        self.deadlines.push(deadline);
    }

    /// One interconnect transfer under the current degradation state:
    /// pristine fabric takes the exact pre-fault path; open windows
    /// stretch serialisation by the bandwidth divisor and add the extra
    /// latency multiples on top of the pipelined base latency.
    fn icn_access(&mut self, at: SimTime, bytes: u64) -> SimTime {
        if self.lat_mult == 1 && self.bw_div == 1 {
            self.icn.access(at, bytes)
        } else {
            let service = self.icn.service_time(bytes) * self.bw_div;
            self.icn.access_train(at, service, bytes) + self.icn.latency() * (self.lat_mult - 1)
        }
    }

    /// Fleet links a transfer between machines `a` and `b` crosses: the
    /// Manhattan distance on the near-square machine grid (`grid_cols`
    /// wide, machine `m` at `(m % cols, m / cols)`) — the same grid the
    /// SFC walks. The byte *metrics* weight every transfer by this
    /// factor; the shared-bus *timing* model ([`FleetEpisode::icn_access`])
    /// stays distance-free, so attribution never moves an event.
    fn fleet_hops(&self, a: usize, b: usize) -> u64 {
        let c = self.grid_cols;
        ((a % c).abs_diff(b % c) + (a / c).abs_diff(b / c)) as u64
    }

    /// Attributes `link_bytes` byte·link-crossings to job record `rec`
    /// and its hub machine. Pure bookkeeping: no event moves, so every
    /// pre-existing fingerprint is unchanged.
    fn attribute(&mut self, rec: usize, hub: usize, link_bytes: u64) {
        self.records[rec].interconnect_bytes += link_bytes;
        self.machine_bytes[hub] += link_bytes;
    }

    /// Link-crossing bytes of a `total`-byte fan (split scatter or
    /// all-reduce) between `machines[0]` — the hub — and the remotes:
    /// the payload is an even per-remote share (remainder spread over
    /// the first remotes), each share weighted by the links between the
    /// hub and that remote. Compact fan-outs therefore cross fewer
    /// links for the same wire bytes.
    fn fan_link_bytes(&self, total: u64, machines: &[usize]) -> u64 {
        let Some((&hub, remotes)) = machines.split_first() else {
            return 0;
        };
        if remotes.is_empty() {
            return 0;
        }
        let n = remotes.len() as u64;
        let (base, rem) = (total / n, total % n);
        remotes
            .iter()
            .enumerate()
            .map(|(j, &m)| (base + u64::from((j as u64) < rem)) * self.fleet_hops(hub, m))
            .sum()
    }

    /// Distance between two machines along the fleet curve (consulted by
    /// [`Placement::SfcLocality`] only).
    fn curve_dist(&self, a: usize, b: usize) -> usize {
        self.sfc_rank[a].abs_diff(self.sfc_rank[b])
    }

    /// The SFC policy's home machine for `tenant`: its current home if
    /// that machine can still take work — the home *follows* the weights,
    /// so a spilled tenant is not dragged back just to migrate out again —
    /// else the tenant's static curve slot.
    fn sfc_home(&self, tenant: usize, machines: usize) -> usize {
        match self.tenant_home[tenant] {
            Some(h) if self.eligible(h) => h,
            _ => self.sfc_order[tenant % machines],
        }
    }

    /// Opens/closes degradation window `d` and recomputes the combined
    /// multipliers (products over open windows, saturating).
    fn degrade(&mut self, d: usize, start: bool, at: SimTime) {
        let code: u64 = if start { 0xF3 } else { 0xF4 };
        self.fault_fp = fold_fingerprint(self.fault_fp, code);
        self.fault_fp = fold_fingerprint(self.fault_fp, d as u64);
        self.fault_fp = fold_fingerprint(self.fault_fp, at.as_fs());
        let name = if start {
            "degrade/start"
        } else {
            "degrade/end"
        };
        self.sink.instant(name, ROUTER_TRACK, 0, at, d as u64, 0);
        self.win_active[d] = start;
        let mut lat: u64 = 1;
        let mut bw: u64 = 1;
        for (w, &on) in self.degradations.iter().zip(&self.win_active) {
            if on {
                lat = lat.saturating_mul(u64::from(w.latency_mult));
                bw = bw.saturating_mul(u64::from(w.bandwidth_div));
            }
        }
        self.lat_mult = lat;
        self.bw_div = bw;
    }

    /// Fail-stop of machine `i` at `at`: evict everything un-finished,
    /// retire the engine incarnation (its report is merged into the
    /// machine's final view), cold-restart system and slot map, and queue
    /// every evicted remainder for re-placement after charging its state
    /// transfer through the interconnect. Completions the engine already
    /// committed (even ones timestamped past `at`) stand.
    fn fail(
        &mut self,
        cspec: &ClusterSpec,
        tenants: &[Tenant],
        engines: &mut [Engine],
        systems: &mut [MacoSystem],
        i: usize,
        at: SimTime,
    ) {
        self.fault_fp = fold_fingerprint(self.fault_fp, 0xF1);
        self.fault_fp = fold_fingerprint(self.fault_fp, i as u64);
        self.fault_fp = fold_fingerprint(self.fault_fp, at.as_fs());
        if !self.alive[i] {
            return;
        }
        self.sink
            .instant("fault/fail", i as u32, SCHED_ROW, at, i as u64, 0);
        self.alive[i] = false;
        self.downs[i].push((at, None));
        self.failures += 1;
        let was_active = self.active[i];
        self.update_full_fleet();

        let evicted = engines[i].evict_all(at);
        let mspec = &cspec.machines[i];
        let old = std::mem::replace(
            &mut engines[i],
            Engine::new(mspec.system.nodes, tenants, &mspec.serve),
        );
        // The fresh incarnation records onto the same shared sink/track as
        // the retired one — trace coverage survives the fail-stop.
        engines[i].set_trace(self.sink.clone(), i as u32);
        self.retired[i].push(old.finish(&systems[i]));
        systems[i] = MacoSystem::new(mspec.system.clone());
        systems[i].reset_shared_resources();
        // The old slot map resolves the evicted ids (including synthetic
        // ids for never-admitted queued arrivals — the engine numbers
        // them in admission order, which is exactly the slot map's heap
        // order); the fresh incarnation starts with a fresh map.
        let mut old_slots = std::mem::take(&mut self.slots[i]);
        self.outstanding[i] = 0;

        let mut latest = at;
        for ej in evicted {
            let (slot_arrival, rec) = old_slots.resolve(ej.id.0 as usize);
            assert!(
                slot_arrival == ej.spec.arrival && self.records[rec].tenant == ej.spec.tenant,
                "machine {i} eviction desync: evicted job does not match its routed record"
            );
            let weight_bytes: u64 = ej
                .spec
                .layers
                .iter()
                .map(|l| l.k * l.n * l.precision.bytes())
                .sum();
            let bytes = cspec.interconnect.migration_bytes + weight_bytes;
            // State transfer is charged exactly once, *here* at eviction;
            // `replace()` only *attributes* it (the link weight needs the
            // destination) and adds no wire bytes — deferral costs
            // waiting, not bytes (differential-tested against a
            // hand-computed total in `two_kill_storm_bytes_match_the_
            // hand_computed_total`).
            let effective = self.icn_access(at, bytes);
            self.replaced_bytes += bytes;
            self.jobs_replaced += 1;
            self.records[rec].requeues += 1;
            self.fault_fp = fold_fingerprint(self.fault_fp, 0xF7);
            self.fault_fp = fold_fingerprint(self.fault_fp, rec as u64);
            self.fault_fp = fold_fingerprint(self.fault_fp, ej.completed_layers as u64);
            self.fault_fp = fold_fingerprint(self.fault_fp, effective.as_fs());
            self.reroutes.push(Reverse(ReRoute {
                at: effective,
                seq: self.reroute_seq,
                rec,
                spec: ej.spec,
                xfer: Some((i, bytes)),
            }));
            self.reroute_seq += 1;
            latest = latest.max(effective);
        }
        self.recovery_latencies.push(latest.since(at));

        // An autoscaled fleet replaces lost *capacity* immediately: the
        // failed active machine's slot goes to the lowest-index alive
        // standby, bypassing the cooldown (this is repair, not demand).
        if self.scaler.is_some() && was_active {
            self.active[i] = false;
            if let Some(s) = (0..self.alive.len()).find(|&m| self.alive[m] && !self.active[m]) {
                self.active[s] = true;
                self.scale(at, true, s);
            }
            self.update_full_fleet();
        }
    }

    /// Recovery of machine `i` at `at`: the machine rejoins the fleet as
    /// a cold, empty incarnation (its fresh engine was installed at the
    /// fail-stop). Under an autoscaler it rejoins as *standby* — unless
    /// the fleet is otherwise empty, in which case it is force-activated
    /// so deferred work can make progress.
    fn recover(&mut self, i: usize, at: SimTime) {
        self.fault_fp = fold_fingerprint(self.fault_fp, 0xF2);
        self.fault_fp = fold_fingerprint(self.fault_fp, i as u64);
        self.fault_fp = fold_fingerprint(self.fault_fp, at.as_fs());
        if self.alive[i] {
            return;
        }
        self.sink
            .instant("fault/recover", i as u32, SCHED_ROW, at, i as u64, 0);
        self.alive[i] = true;
        if let Some(last) = self.downs[i].last_mut() {
            last.1 = Some(at);
        }
        self.recoveries += 1;
        if self.scaler.is_some() {
            if self.eligible_count() == 0 {
                self.active[i] = true;
                self.scale(at, true, i);
            } else {
                self.active[i] = false;
            }
        }
        self.update_full_fleet();
    }

    /// Records one autoscaler action on machine `m` (activation or
    /// drain), folding it into the fault fingerprint.
    fn scale(&mut self, at: SimTime, grew: bool, m: usize) {
        let after = self.eligible_count();
        self.scale_events.push(ScaleEvent {
            at,
            grew,
            active_after: after,
        });
        self.peak_active = self.peak_active.max(after);
        self.fault_fp = fold_fingerprint(self.fault_fp, 0xF5);
        self.fault_fp = fold_fingerprint(self.fault_fp, u64::from(grew));
        self.fault_fp = fold_fingerprint(self.fault_fp, m as u64);
        self.fault_fp = fold_fingerprint(self.fault_fp, after as u64);
        self.fault_fp = fold_fingerprint(self.fault_fp, at.as_fs());
        let name = if grew { "scale/grow" } else { "scale/shrink" };
        self.sink.instant(name, ROUTER_TRACK, 0, at, m as u64, 0);
    }

    /// One autoscaler decision at a routed arrival: slide the windows,
    /// then grow (arrival rate above `grow_per_machine` per active
    /// machine, or misses over budget) or shrink (no misses and rate
    /// comfortably below `shrink_per_machine` per remaining machine),
    /// subject to the cooldown. Draining only removes the machine from
    /// the placement set — its queued work finishes where it is.
    fn autoscale(&mut self, t: SimTime) {
        let Some(a) = self.scaler else { return };
        self.win_arrivals.push_back(t);
        let cutoff = if t.since(SimTime::ZERO) > a.window {
            t - a.window
        } else {
            SimTime::ZERO
        };
        while self.win_arrivals.front().is_some_and(|&x| x < cutoff) {
            self.win_arrivals.pop_front();
        }
        while self.win_misses.front().is_some_and(|&x| x < cutoff) {
            self.win_misses.pop_front();
        }
        if let Some(last) = self.last_scale {
            if t.since(last) < a.cooldown {
                return;
            }
        }
        let active_n = self.eligible_count() as u64;
        let rate = self.win_arrivals.len() as u64;
        let misses = self.win_misses.len() as u64;
        if rate > u64::from(a.grow_per_machine) * active_n || misses > u64::from(a.miss_budget) {
            if let Some(s) = (0..self.alive.len()).find(|&m| self.alive[m] && !self.active[m]) {
                self.active[s] = true;
                self.last_scale = Some(t);
                self.scale(t, true, s);
                self.update_full_fleet();
            }
        } else if active_n > a.min_machines as u64
            && misses == 0
            && rate < u64::from(a.shrink_per_machine) * (active_n - 1)
        {
            if let Some(s) = (0..self.alive.len())
                .rev()
                .find(|&m| self.alive[m] && self.active[m])
            {
                self.active[s] = false;
                self.last_scale = Some(t);
                self.scale(t, false, s);
                self.update_full_fleet();
            }
        }
    }

    /// Routes one arrival: validates, takes the autoscaler decision,
    /// picks machine(s) among the eligible set, charges the
    /// interconnect, pushes the job (or its parts) into the machine
    /// engine(s). With zero eligible machines the arrival is deferred to
    /// the next scheduled recovery.
    fn route(
        &mut self,
        spec: &ClusterSpec,
        tenants: &[Tenant],
        engines: &mut [Engine],
        job: JobSpec,
        index: usize,
    ) {
        let machines = engines.len();
        self.fingerprint = fold_fingerprint(self.fingerprint, index as u64);
        if validate_spec(tenants.len(), &job).is_err() {
            self.jobs_rejected += 1;
            self.sink.instant(
                "route/reject",
                ROUTER_TRACK,
                0,
                job.arrival,
                index as u64,
                job.tenant as u32,
            );
            let deadline = job.deadline;
            self.push_record(
                JobRecord {
                    index,
                    tenant: job.tenant,
                    arrival: job.arrival,
                    effective_arrival: job.arrival,
                    machines: Vec::new(),
                    split: None,
                    migrated: false,
                    requeues: 0,
                    finished_at: None,
                    flops: job.flops(),
                    interconnect_bytes: 0,
                },
                deadline,
            );
            return;
        }
        let flops = job.flops();
        self.autoscale(job.arrival);

        // Every machine dead: defer to the next scheduled recovery (the
        // fault-first tie order guarantees the recovery is processed
        // before the deferred re-route at the same instant).
        if !self.full_fleet && self.eligible_count() == 0 {
            let wake = self
                .next_recovery()
                .expect("every machine is dead with no scheduled recovery: the fleet cannot serve this arrival");
            let rec = self.records.len();
            let deadline = job.deadline;
            self.push_record(
                JobRecord {
                    index,
                    tenant: job.tenant,
                    arrival: job.arrival,
                    effective_arrival: job.arrival,
                    machines: Vec::new(),
                    split: None,
                    migrated: false,
                    requeues: 0,
                    finished_at: None,
                    flops,
                    interconnect_bytes: 0,
                },
                deadline,
            );
            self.sink.instant(
                "route/defer",
                ROUTER_TRACK,
                0,
                job.arrival,
                index as u64,
                job.tenant as u32,
            );
            self.reroutes.push(Reverse(ReRoute {
                at: wake,
                seq: self.reroute_seq,
                rec,
                spec: job,
                xfer: None,
            }));
            self.reroute_seq += 1;
            return;
        }

        // Data-parallel split: single-layer jobs above the threshold fan
        // out across the least-loaded eligible machines; whole DNN
        // streams always stay machine-affine.
        let elig_n = if self.full_fleet {
            machines
        } else {
            self.eligible_count()
        };
        let want_ways = spec.split.max_ways.min(elig_n);
        if job.layers.len() == 1 && flops >= spec.split.min_flops && want_ways >= 2 {
            let split = split_job(&job, spec.split.kind, want_ways);
            if split.parts.len() >= 2 {
                let mut order: Vec<usize> = if self.full_fleet {
                    (0..machines).collect()
                } else {
                    (0..machines).filter(|&m| self.eligible(m)).collect()
                };
                if spec.placement == Placement::SfcLocality {
                    // Curve-compact fan-out anchored on the tenant's home:
                    // the anchor stays `targets[0]` (so the home does not
                    // churn to the least-loaded machine and pay a
                    // migration on the tenant's next affine job) and the
                    // remaining parts pack along the curve.
                    let anchor = self.sfc_home(job.tenant, machines);
                    order.sort_by_key(|&m| (self.curve_dist(m, anchor), self.outstanding[m], m));
                } else {
                    order.sort_by_key(|&m| (self.outstanding[m], m));
                }
                let targets: Vec<usize> = order[..split.parts.len()].to_vec();
                // Link-weighted scatter traffic, attributed to the job
                // and its anchor machine (the hub the operands fan out
                // from): a curve-compact fan-out crosses fewer links for
                // the same wire bytes.
                let scatter_link = self.fan_link_bytes(split.scatter_bytes, &targets);
                let effective = if split.scatter_bytes > 0 {
                    self.machine_bytes[targets[0]] += scatter_link;
                    self.icn_access(job.arrival, split.scatter_bytes)
                } else {
                    job.arrival
                };
                if spec.placement == Placement::SfcLocality {
                    self.sink.instant(
                        "place/sfc",
                        ROUTER_TRACK,
                        0,
                        effective,
                        index as u64,
                        targets[0] as u32,
                    );
                }
                for (part, &m) in split.parts.into_iter().zip(&targets) {
                    // Built field by field: the part owns its single
                    // layer, so no clone of the parent layer stream.
                    let part_spec = JobSpec {
                        tenant: job.tenant,
                        layers: vec![part.task],
                        arrival: effective,
                        priority: job.priority,
                        deadline: job.deadline,
                        gang_width: job.gang_width,
                    };
                    self.outstanding[m] += part_spec.flops();
                    self.push_slot(m, effective, index);
                    engines[m].push(part_spec);
                    self.rekey(&engines[m], m);
                    self.fingerprint = fold_fingerprint(self.fingerprint, m as u64);
                }
                self.fingerprint = fold_fingerprint(self.fingerprint, effective.as_fs());
                self.sink.instant(
                    "route/split",
                    ROUTER_TRACK,
                    0,
                    effective,
                    index as u64,
                    job.tenant as u32,
                );
                self.reductions.insert(
                    index,
                    Reduction {
                        parts_left: targets.len(),
                        end: SimTime::ZERO,
                        reduce_bytes: split.reduce_bytes,
                    },
                );
                self.splits += 1;
                // The split's primary machine becomes the tenant's home
                // (the scatter already priced the operand movement, so no
                // separate migration charge).
                self.tenant_home[job.tenant] = Some(targets[0]);
                self.push_record(
                    JobRecord {
                        index,
                        tenant: job.tenant,
                        arrival: job.arrival,
                        effective_arrival: effective,
                        machines: targets,
                        split: Some(spec.split.kind),
                        migrated: false,
                        requeues: 0,
                        finished_at: None,
                        flops,
                        interconnect_bytes: scatter_link,
                    },
                    job.deadline,
                );
                return;
            }
        }

        // Machine-affine placement.
        let m = self.place(spec.placement, machines, job.tenant);
        if spec.placement == Placement::SfcLocality {
            self.sink.instant(
                "place/sfc",
                ROUTER_TRACK,
                0,
                job.arrival,
                index as u64,
                m as u32,
            );
        }
        let home = self.tenant_home[job.tenant];
        let migrated = home.is_some_and(|h| h != m);
        let mut link_bytes = 0;
        let effective = if migrated {
            // The tenant's context and this job's weights move over the
            // interconnect before the job can start on the new machine.
            // Attributed (link-weighted) to the job and the old home —
            // the hub the state streams off.
            let weight_bytes: u64 = job
                .layers
                .iter()
                .map(|l| l.k * l.n * l.precision.bytes())
                .sum();
            self.migrations += 1;
            let bytes = spec.interconnect.migration_bytes + weight_bytes;
            let h = home.expect("migrated implies a previous home");
            link_bytes = bytes * self.fleet_hops(h, m);
            self.machine_bytes[h] += link_bytes;
            self.icn_access(job.arrival, bytes)
        } else {
            job.arrival
        };
        self.tenant_home[job.tenant] = Some(m);
        self.outstanding[m] += flops;
        self.push_slot(m, effective, index);
        let tenant = job.tenant;
        let arrival = job.arrival;
        let deadline = job.deadline;
        // The routed job moves into the machine engine whole — the layer
        // stream is never cloned on the routing path.
        engines[m].push(JobSpec {
            arrival: effective,
            ..job
        });
        self.rekey(&engines[m], m);
        self.fingerprint = fold_fingerprint(self.fingerprint, m as u64);
        self.fingerprint = fold_fingerprint(self.fingerprint, effective.as_fs());
        let name = if migrated { "route/migrate" } else { "route" };
        self.sink.instant(
            name,
            ROUTER_TRACK,
            0,
            effective,
            index as u64,
            tenant as u32,
        );
        self.push_record(
            JobRecord {
                index,
                tenant,
                arrival,
                effective_arrival: effective,
                machines: vec![m],
                split: None,
                migrated,
                requeues: 0,
                finished_at: None,
                flops,
                interconnect_bytes: link_bytes,
            },
            deadline,
        );
    }

    /// Re-places one evicted remainder (or deferred arrival) on an
    /// eligible machine. With none eligible it re-defers to the next
    /// scheduled recovery (state transfer was already charged at
    /// eviction — deferral costs waiting, not bytes).
    fn replace(&mut self, spec: &ClusterSpec, engines: &mut [Engine], r: ReRoute) {
        if self.eligible_count() == 0 {
            let wake = self
                .next_recovery()
                .expect("every machine is dead with no scheduled recovery: evicted work cannot be re-placed");
            self.reroutes.push(Reverse(ReRoute {
                at: wake.max(r.at),
                seq: self.reroute_seq,
                rec: r.rec,
                spec: r.spec,
                xfer: r.xfer,
            }));
            self.reroute_seq += 1;
            return;
        }
        let machines = engines.len();
        let m = self.place(spec.placement, machines, r.spec.tenant);
        if spec.placement == Placement::SfcLocality {
            self.sink
                .instant("place/sfc", ROUTER_TRACK, 0, r.at, r.rec as u64, m as u32);
        }
        // The eviction's wire bytes were charged at fail(); now that the
        // destination is known, weight them by the links crossed and
        // attribute them to the job and the failed (hub) machine.
        if let Some((src, bytes)) = r.xfer {
            let link = bytes * self.fleet_hops(src, m);
            self.attribute(r.rec, src, link);
        }
        self.tenant_home[r.spec.tenant] = Some(m);
        self.outstanding[m] += r.spec.flops();
        self.push_slot(m, r.at, r.rec);
        let rec = r.rec;
        let at = r.at;
        engines[m].push(JobSpec {
            arrival: at,
            ..r.spec
        });
        self.rekey(&engines[m], m);
        self.fault_fp = fold_fingerprint(self.fault_fp, 0xF6);
        self.fault_fp = fold_fingerprint(self.fault_fp, m as u64);
        self.fault_fp = fold_fingerprint(self.fault_fp, rec as u64);
        self.fault_fp = fold_fingerprint(self.fault_fp, at.as_fs());
        self.sink.instant(
            "replace",
            m as u32,
            SCHED_ROW,
            at,
            rec as u64,
            self.records[rec].tenant as u32,
        );
        if self.records[rec].machines.is_empty() {
            // A deferred arrival is only now effectively admitted.
            self.records[rec].effective_arrival = at;
        }
        self.records[rec].machines.push(m);
    }

    /// Re-keys one machine in the global-merge cursor heap: pushes the
    /// machine's *current* next event. Called after every operation that
    /// can change a machine's event stream (an [`Engine::push`] during
    /// routing, an [`Engine::advance`]); superseded entries are left in
    /// the heap and discarded lazily when popped, so every machine with a
    /// pending event always has one current cursor and the heap top's
    /// first valid entry is the true fleet minimum.
    fn rekey(&mut self, engine: &Engine, machine: usize) {
        if let Some(t) = engine.next_event() {
            self.cursors.push(Reverse((t, machine)));
        }
    }

    /// The machine-affine placement decision. A full fleet takes the
    /// exact pre-fault path (bit-identical decisions); otherwise the
    /// same policies run restricted to the eligible machines.
    fn place(&mut self, placement: Placement, machines: usize, tenant: usize) -> usize {
        if self.full_fleet {
            return match placement {
                Placement::RoundRobin => {
                    let m = self.rr % machines;
                    self.rr += 1;
                    m
                }
                Placement::LeastLoaded => (0..machines)
                    .min_by_key(|&m| (self.outstanding[m], m))
                    .expect("at least one machine"),
                Placement::TenantAffinity { spill } => {
                    let home = self.tenant_home[tenant].unwrap_or(tenant % machines);
                    let total: u64 = self.outstanding.iter().sum();
                    // Spill when the home's load exceeds `spill`× the fleet
                    // average: home·machines > spill·total, cross-multiplied
                    // so the comparison stays in integers.
                    let overloaded = total > 0
                        && (self.outstanding[home] as u128 * machines as u128)
                            > (spill as u128 * total as u128);
                    if overloaded {
                        (0..machines)
                            .min_by_key(|&m| (self.outstanding[m], m))
                            .expect("at least one machine")
                    } else {
                        home
                    }
                }
                Placement::SfcLocality => {
                    let home = self.sfc_home(tenant, machines);
                    if self.sfc_overloaded(home, machines) {
                        // Spill along the curve: the nearest other machine
                        // (by curve distance, then load) keeps the
                        // tenant's traffic mesh-compact.
                        (0..machines)
                            .filter(|&m| m != home)
                            .min_by_key(|&m| (self.curve_dist(m, home), self.outstanding[m], m))
                            .unwrap_or(home)
                    } else {
                        home
                    }
                }
            };
        }
        let n_elig = self.eligible_count();
        debug_assert!(n_elig > 0, "place() with no eligible machines");
        let least_eligible = |ep: &Self| {
            (0..machines)
                .filter(|&m| ep.eligible(m))
                .min_by_key(|&m| (ep.outstanding[m], m))
                .expect("at least one eligible machine")
        };
        match placement {
            Placement::RoundRobin => {
                let k = self.rr % n_elig;
                self.rr += 1;
                (0..machines)
                    .filter(|&m| self.eligible(m))
                    .nth(k)
                    .expect("k < eligible count")
            }
            Placement::LeastLoaded => least_eligible(self),
            Placement::TenantAffinity { spill } => {
                let home = self.tenant_home[tenant].unwrap_or(tenant % machines);
                if !self.eligible(home) {
                    return least_eligible(self);
                }
                let total: u64 = self.outstanding.iter().sum();
                let overloaded = total > 0
                    && (self.outstanding[home] as u128 * machines as u128)
                        > (spill as u128 * total as u128);
                if overloaded {
                    least_eligible(self)
                } else {
                    home
                }
            }
            Placement::SfcLocality => {
                let home = self.sfc_home(tenant, machines);
                if !self.eligible(home) {
                    // The static curve slot is down/drained: snap to the
                    // curve-nearest eligible machine.
                    return (0..machines)
                        .filter(|&m| self.eligible(m))
                        .min_by_key(|&m| (self.curve_dist(m, home), self.outstanding[m], m))
                        .expect("at least one eligible machine");
                }
                if self.sfc_overloaded(home, machines) {
                    (0..machines)
                        .filter(|&m| self.eligible(m) && m != home)
                        .min_by_key(|&m| (self.curve_dist(m, home), self.outstanding[m], m))
                        .unwrap_or(home)
                } else {
                    home
                }
            }
        }
    }

    /// [`Placement::SfcLocality`]'s overload test: the home spills when
    /// its outstanding flops exceed twice the fleet average — the same
    /// cross-multiplied integer comparison `TenantAffinity { spill: 2 }`
    /// uses, so the two policies differ only in *where* they spill.
    fn sfc_overloaded(&self, home: usize, machines: usize) -> bool {
        let total: u64 = self.outstanding.iter().sum();
        total > 0 && (self.outstanding[home] as u128 * machines as u128) > (2 * total as u128)
    }

    /// Registers one routed job with the machine's [`SlotMap`], mirroring
    /// [`Engine::push`] ordering: the engine admits pushed jobs in
    /// `(arrival, push order)` order, and pushes never predate an
    /// already-admitted arrival, so the slot map's rank `i` is the
    /// engine's job `i` by the time it can complete.
    fn push_slot(&mut self, machine: usize, at: SimTime, record: usize) {
        let slot = &mut self.slots[machine];
        slot.pending.push(Reverse((at, slot.seq, record)));
        slot.seq += 1;
    }

    /// Processes one machine-level job completion: load accounting, split
    /// reduction barriers, fleet-level completion records and SLO/goodput
    /// accounting.
    fn complete(&mut self, machine: usize, outcome: JobOutcome) {
        let (slot_arrival, rec) = self.slots[machine].resolve(outcome.job.0 as usize);
        // The slot map assumes the engine admitted every routed job: a
        // machine-level admission rejection (queue overflow) would shift
        // all later machine-local job ids off their slots. Fail loudly
        // instead of attributing completions to the wrong records.
        assert!(
            slot_arrival == outcome.arrival && self.records[rec].tenant == outcome.tenant,
            "machine {machine} admission desync (queue overflow?): routed jobs must fit \
             the machine's ServeConfig::queue_capacity"
        );
        // Outstanding flops are a strict routed-minus-completed ledger; a
        // completion exceeding what was routed means the accounting is
        // corrupt and every load-aware placement decision after it would
        // be skewed. Debug builds fail loudly; release builds clamp —
        // and *count* the clamp, so the desync is never silent.
        self.outstanding[machine] = match self.outstanding[machine].checked_sub(outcome.flops) {
            Some(rest) => rest,
            None => {
                self.diagnostics.outstanding_clamps += 1;
                if cfg!(debug_assertions) {
                    panic!(
                        "machine {machine} outstanding-flops underflow: completed {} flops \
                         with only {} outstanding — routed/completed accounting desynced",
                        outcome.flops, self.outstanding[machine]
                    );
                }
                0
            }
        };
        self.fingerprint = fold_fingerprint(self.fingerprint, machine as u64);
        self.fingerprint = fold_fingerprint(self.fingerprint, outcome.finished_at.as_fs());
        let finished = match self.reductions.get_mut(&rec) {
            Some(red) => {
                red.parts_left -= 1;
                red.end = red.end.max(outcome.finished_at);
                if red.parts_left > 0 {
                    return;
                }
                // Barrier cleared: the k-split pays its all-reduce on the
                // interconnect; the m-split completes with its last part.
                let red = self.reductions.remove(&rec).expect("present");
                if red.reduce_bytes > 0 {
                    // Link-weighted all-reduce traffic, attributed to
                    // the job and its anchor (first target) machine —
                    // the hub the partial results stream into.
                    let parts = std::mem::take(&mut self.records[rec].machines);
                    let link = self.fan_link_bytes(red.reduce_bytes, &parts);
                    self.records[rec].machines = parts;
                    self.attribute(rec, self.records[rec].machines[0], link);
                    self.icn_access(red.end, red.reduce_bytes)
                } else {
                    red.end
                }
            }
            None => outcome.finished_at,
        };
        self.records[rec].finished_at = Some(finished);
        self.jobs_completed += 1;
        self.last_finish = self.last_finish.max(finished);
        self.fingerprint = fold_fingerprint(self.fingerprint, finished.as_fs());
        self.sink.instant(
            "job/done",
            ROUTER_TRACK,
            0,
            finished,
            self.records[rec].index as u64,
            self.records[rec].tenant as u32,
        );
        // Fleet-level SLO accounting: a job is good throughput iff it
        // finished within its (router-arrival-relative) deadline;
        // deadline-less jobs always count.
        let missed =
            self.deadlines[rec].is_some_and(|d| finished.since(self.records[rec].arrival) > d);
        if missed {
            self.deadline_misses += 1;
            if self.scaler.is_some() {
                self.win_misses.push_back(finished);
            }
        } else {
            self.goodput_flops += self.records[rec].flops;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maco_serve::JobId;
    use maco_sim::SimDuration;

    fn t(ns: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_ns(ns)
    }

    fn episode(machines: usize) -> FleetEpisode {
        FleetEpisode::new(&ClusterSpec::uniform(machines, 2), 4)
    }

    /// The lazily drained slot map materialises machine-local job ids in
    /// `(effective arrival, route order)` rank — the engine's admission
    /// order — regardless of resolution order.
    #[test]
    fn slot_map_resolves_in_arrival_then_route_order() {
        let mut sm = SlotMap::default();
        sm.pending.push(Reverse((t(5), 0, 10)));
        sm.pending.push(Reverse((t(1), 1, 11)));
        sm.pending.push(Reverse((t(5), 2, 12)));
        sm.seq = 3;
        // Rank 0 is the earliest arrival; equal arrivals rank by route
        // order. Out-of-order resolution still lands on the same ranks.
        assert_eq!(sm.resolve(2), (t(5), 12));
        assert_eq!(sm.resolve(0), (t(1), 11));
        assert_eq!(sm.resolve(1), (t(5), 10));
    }

    /// Regression: a completion reporting more flops than its machine has
    /// outstanding is a corrupted routed-minus-completed ledger and must
    /// fail loudly in debug builds — `saturating_sub` used to mask it and
    /// silently skew every load-aware placement decision afterwards.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "outstanding-flops underflow")]
    fn outstanding_underflow_panics_in_debug() {
        let mut ep = episode(1);
        ep.outstanding[0] = 10;
        ep.push_record(
            JobRecord {
                index: 0,
                tenant: 0,
                arrival: t(0),
                effective_arrival: t(0),
                machines: vec![0],
                split: None,
                migrated: false,
                requeues: 0,
                finished_at: None,
                flops: 100,
                interconnect_bytes: 0,
            },
            None,
        );
        ep.push_slot(0, t(0), 0);
        ep.complete(
            0,
            JobOutcome {
                job: JobId(0),
                tenant: 0,
                arrival: t(0),
                finished_at: t(7),
                flops: 100,
            },
        );
    }

    /// In release builds the same underflow clamps to zero *and* counts
    /// in the diagnostics, so every healthy-episode test can pin the
    /// counter at 0 and a desync can never pass silently.
    #[cfg(not(debug_assertions))]
    #[test]
    fn outstanding_underflow_clamps_and_counts_in_release() {
        let mut ep = episode(1);
        ep.outstanding[0] = 10;
        ep.push_record(
            JobRecord {
                index: 0,
                tenant: 0,
                arrival: t(0),
                effective_arrival: t(0),
                machines: vec![0],
                split: None,
                migrated: false,
                requeues: 0,
                finished_at: None,
                flops: 100,
                interconnect_bytes: 0,
            },
            None,
        );
        ep.push_slot(0, t(0), 0);
        ep.complete(
            0,
            JobOutcome {
                job: JobId(0),
                tenant: 0,
                arrival: t(0),
                finished_at: t(7),
                flops: 100,
            },
        );
        assert_eq!(ep.outstanding[0], 0);
        assert_eq!(ep.diagnostics.outstanding_clamps, 1);
    }
}
