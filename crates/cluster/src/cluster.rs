//! The fleet: a front-end router over many machines, composed onto one
//! global virtual-time timeline.
//!
//! Every machine runs the *same* co-simulation a standalone
//! [`maco_serve::Server`] runs — a [`maco_serve::Engine`] driving that
//! machine's [`MacoSystem`] through the reentrant
//! `begin_gemm`/`step_gemm` core API — and the cluster merges the
//! machines' event streams: the global loop always processes the minimum
//! of (next unrouted fleet arrival, every machine's next event), routing
//! arrivals first on ties exactly like the per-machine loop does. The
//! merge is a lazy-deletion min-heap of machine cursors `(time, machine)`
//! re-keyed only for machines whose event stream actually changed (the
//! one just advanced, the ones just routed to); a popped cursor is valid
//! iff it still equals its machine's [`Engine::next_event`], so stale
//! entries cost one O(log n) discard instead of a per-step fleet scan.
//! Machines
//! share no simulated hardware, so advancing one machine never perturbs
//! another; all cross-machine coupling flows through the interconnect
//! cost model (migration transfers delay arrivals, k-split all-reduces
//! delay completions) and through the router's load accounting, both of
//! which are pure functions of previously processed events. That is what
//! makes the fleet fingerprint byte-identical across same-seed runs.
//!
//! Multi-machine engines admit work at the *router's horizon*: a
//! completion whose simulated time leaps past the next unrouted fleet
//! arrival stops its queued-arrival drain there (see [`Engine::advance`]'s
//! `bound`), so machine-local admission order always equals
//! `(arrival, push order)`; arrivals beyond the horizon are admitted
//! later at their own event times, with the time-aware node pool keeping
//! freed nodes invisible before their free instants. A one-machine
//! cluster skips the horizon entirely — with no placement freedom the
//! router routes eagerly — and is therefore bit-identical to a
//! standalone [`maco_serve::Server`] (tested, including under timestamp
//! tie storms).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use maco_core::system::MacoSystem;
use maco_serve::{validate_spec, Engine, JobOutcome, JobSpec, Tenant};
use maco_sim::{FxHashMap, LatencyBandwidthResource, SimTime};
use maco_workloads::trace::TraceRequest;

use crate::report::{fold_fingerprint, ClusterReport, JobRecord, MachineReport};
use crate::spec::{ClusterSpec, Placement};
use crate::split::split_job;

/// Errors a fleet episode can surface (the per-machine co-simulation's).
pub type ClusterError = maco_serve::ServeError;

/// The fleet: a [`ClusterSpec`] instantiated into real machines plus the
/// fleet-wide tenant registry (every tenant is registered on every
/// machine; placement decides where its jobs actually run).
pub struct Cluster {
    spec: ClusterSpec,
    tenants: Vec<Tenant>,
    systems: Vec<MacoSystem>,
}

impl Cluster {
    /// Instantiates the fleet.
    ///
    /// # Panics
    ///
    /// Panics on an empty machine list or tenant fleet (and propagates the
    /// machine configurations' own validation).
    pub fn new(spec: ClusterSpec, tenants: Vec<Tenant>) -> Self {
        assert!(!spec.machines.is_empty(), "need at least one machine");
        assert!(!tenants.is_empty(), "need at least one tenant");
        let systems = spec
            .machines
            .iter()
            .map(|m| MacoSystem::new(m.system.clone()))
            .collect();
        Cluster {
            spec,
            tenants,
            systems,
        }
    }

    /// The fleet declaration.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// The fleet-wide tenant registry.
    pub fn tenants(&self) -> &[Tenant] {
        &self.tenants
    }

    /// Number of machines.
    pub fn machines(&self) -> usize {
        self.systems.len()
    }

    /// Total compute nodes across the fleet.
    pub fn total_nodes(&self) -> usize {
        self.spec.total_nodes()
    }

    /// Serves a generated trace (see [`maco_workloads::trace`]) across the
    /// fleet: converts each request into a job and runs the episode to
    /// completion.
    ///
    /// # Errors
    ///
    /// Propagates [`ClusterError`]s from the per-machine co-simulations.
    pub fn run_trace(&mut self, trace: &[TraceRequest]) -> Result<ClusterReport, ClusterError> {
        self.run_jobs(trace.iter().map(JobSpec::from_request).collect())
    }

    /// Runs one fleet episode over `specs` (arrival-sorted internally)
    /// until every routed job has completed on its machine(s) and every
    /// pending reduction has drained.
    ///
    /// Each machine's [`maco_serve::ServeConfig::queue_capacity`] must
    /// accommodate its routed backlog: a machine-level admission overflow
    /// would desynchronise the fleet's job accounting, so capacities are
    /// validated *before* the episode starts, and an undersized machine is a
    /// clear, early panic naming the machine — never a mid-episode
    /// accounting desync.
    ///
    /// # Errors
    ///
    /// Propagates [`ClusterError`]s from the per-machine co-simulations.
    ///
    /// # Panics
    ///
    /// Panics when a machine's queue capacity cannot hold the worst-case
    /// routed backlog, naming the offending machine.
    pub fn run_jobs(&mut self, mut specs: Vec<JobSpec>) -> Result<ClusterReport, ClusterError> {
        specs.sort_by_key(|s| s.arrival);
        self.validate_capacity(&specs);
        let machines = self.systems.len();
        for sys in &mut self.systems {
            sys.reset_shared_resources();
        }
        let mut engines: Vec<Engine> = self
            .spec
            .machines
            .iter()
            .map(|m| Engine::new(m.system.nodes, &self.tenants, &m.serve))
            .collect();
        let mut ep = FleetEpisode {
            icn: LatencyBandwidthResource::new(
                self.spec.interconnect.latency,
                self.spec.interconnect.gbps,
            ),
            outstanding: vec![0; machines],
            tenant_home: vec![None; self.tenants.len()],
            rr: 0,
            slots: (0..machines).map(|_| SlotMap::default()).collect(),
            cursors: BinaryHeap::new(),
            records: Vec::with_capacity(specs.len()),
            reductions: FxHashMap::default(),
            jobs_completed: 0,
            jobs_rejected: 0,
            migrations: 0,
            splits: 0,
            last_finish: SimTime::ZERO,
            fingerprint: 0,
        };

        // A fleet of one has no routing freedom: every job lands on
        // machine 0, nothing migrates, nothing splits. Routing eagerly is
        // therefore decision-identical to lazy routing — and it lets the
        // engine run with no external horizon, which makes the
        // one-machine cluster reproduce the standalone `Server` schedule
        // bit for bit (the contract the equivalence tests pin) even at
        // the contention corners where a bounded arrival drain would
        // reorder scheduling attempts.
        let mut cursor = 0usize;
        let mut pending = std::collections::VecDeque::from(specs);
        if machines == 1 {
            while let Some(spec) = pending.pop_front() {
                ep.route(&self.spec, &self.tenants, &mut engines, spec, cursor);
                cursor += 1;
            }
        }

        // The global event merge: route the next fleet arrival or advance
        // the machine owning the minimum next event, arrivals first on
        // ties (so routing state is current before any same-instant step).
        // The machine minimum comes from the lazy-deletion cursor heap:
        // stale cursors (no longer equal to their machine's next event)
        // are discarded on pop, and every engine push/advance re-keys the
        // touched machine, so the top valid cursor is always the true
        // fleet minimum without rescanning every machine per step.
        loop {
            let arrival = pending.front().map(|s| s.arrival);
            let machine = loop {
                match ep.cursors.peek() {
                    None => break None,
                    Some(&Reverse(cur @ (t, m))) => {
                        if engines[m].next_event() == Some(t) {
                            break Some(cur);
                        }
                        ep.cursors.pop();
                    }
                }
            };
            let arrival_first = match (arrival, machine) {
                (Some(at), Some((mt, _))) => at <= mt,
                (Some(_), None) => true,
                (None, _) => false,
            };
            if arrival_first {
                let spec = pending.pop_front().expect("peeked above");
                let index = cursor;
                cursor += 1;
                ep.route(&self.spec, &self.tenants, &mut engines, spec, index);
            } else if let Some((_, i)) = machine {
                ep.cursors.pop();
                if let Some(outcome) = engines[i].advance(&mut self.systems[i], arrival)? {
                    ep.complete(i, outcome);
                }
                ep.rekey(&engines[i], i);
            } else {
                break;
            }
        }
        debug_assert!(ep.reductions.is_empty(), "unfinished reductions");

        let machine_reports: Vec<MachineReport> = engines
            .into_iter()
            .zip(&self.systems)
            .zip(&self.spec.machines)
            .map(|((engine, system), mspec)| MachineReport {
                name: mspec.name.clone(),
                nodes: mspec.system.nodes,
                serve: engine.finish(system),
            })
            .collect();
        let mut fp = ep.fingerprint;
        let mut makespan = ep.last_finish;
        for m in &machine_reports {
            fp = fold_fingerprint(fp, m.serve.fingerprint);
            makespan = makespan.max(SimTime::ZERO + m.serve.makespan);
        }
        fp = fold_fingerprint(fp, makespan.as_fs());
        Ok(ClusterReport {
            jobs: ep.records,
            jobs_completed: ep.jobs_completed,
            jobs_rejected: ep.jobs_rejected,
            makespan: makespan.since(SimTime::ZERO),
            total_flops: machine_reports.iter().map(|m| m.serve.total_flops).sum(),
            interconnect_bytes: ep.icn.bandwidth().bytes_transferred(),
            interconnect_busy: ep.icn.bandwidth().busy_time(),
            migrations: ep.migrations,
            splits: ep.splits,
            machines: machine_reports,
            fingerprint: fp,
        })
    }

    /// Pre-flight admission-capacity check: every machine must be able to
    /// hold the worst-case routed backlog, i.e. every admissible job in
    /// the episode (placement is load-dependent, so LeastLoaded and
    /// spilling TenantAffinity can in principle send *all* jobs to one
    /// machine; a split contributes at most one part per machine per
    /// job). An undersized queue would otherwise surface as a
    /// machine-level admission rejection deep inside the episode, where
    /// it desynchronises the slot accounting — here it is an early,
    /// attributable error instead.
    ///
    /// # Panics
    ///
    /// Panics naming the first offending machine.
    fn validate_capacity(&self, specs: &[JobSpec]) {
        let admissible = specs
            .iter()
            .filter(|s| validate_spec(self.tenants.len(), s).is_ok())
            .count();
        for (i, m) in self.spec.machines.iter().enumerate() {
            assert!(
                m.serve.queue_capacity >= admissible,
                "machine {i} ({}) queue_capacity {} cannot hold the episode's worst-case \
                 routed backlog of {admissible} jobs; raise ServeConfig::queue_capacity on \
                 that machine or shard the trace",
                m.name,
                m.serve.queue_capacity,
            );
        }
    }
}

/// An unfinished data-parallel reduction barrier.
struct Reduction {
    parts_left: usize,
    /// Latest part completion so far.
    end: SimTime,
    /// All-reduce bytes charged when the barrier clears (zero = m-split).
    reduce_bytes: u64,
}

/// Per-machine mapping from the engine's admission-ordered job ids back
/// to fleet record indices.
///
/// Routed jobs enter the `pending` min-heap keyed `(effective arrival,
/// route order)` — exactly the order the machine engine admits them in
/// (its push contract guarantees no pushed arrival predates an admitted
/// one, so heap order *is* admission order). Ranks are materialised
/// lazily: when job `i` completes, the heap is drained up to slot `i`.
/// Every job with id ≤ `i` was already routed by then, and any later
/// route keys strictly after the drained prefix, so the prefix is final —
/// each slot costs one O(log n) heap pop instead of the old O(n)
/// backward-scan sorted insert.
#[derive(Default)]
struct SlotMap {
    /// Routed-but-not-ranked jobs: `(effective arrival, route seq, record)`.
    pending: BinaryHeap<Reverse<(SimTime, u64, usize)>>,
    /// Monotone route counter — the stable tiebreak for equal arrivals.
    seq: u64,
    /// Slot `i` = the machine engine's job `i`: `(effective arrival,
    /// record index)`.
    assigned: Vec<(SimTime, usize)>,
}

impl SlotMap {
    /// The `(effective arrival, record)` of machine-local job `id`,
    /// materialising ranks up to `id` on demand.
    ///
    /// # Panics
    ///
    /// Panics if the engine reports a job that was never routed.
    fn resolve(&mut self, id: usize) -> (SimTime, usize) {
        while self.assigned.len() <= id {
            let Reverse((at, _, rec)) = self
                .pending
                .pop()
                .expect("engine completed a job that was never routed");
            self.assigned.push((at, rec));
        }
        self.assigned[id]
    }
}

/// Mutable router state of one fleet episode.
struct FleetEpisode {
    icn: LatencyBandwidthResource,
    /// Per machine: routed-minus-completed GEMM flops.
    outstanding: Vec<u64>,
    /// Per tenant: the machine its latest job ran on.
    tenant_home: Vec<Option<usize>>,
    /// Round-robin cursor.
    rr: usize,
    /// Per machine: the admission-slot → fleet-record mapping.
    slots: Vec<SlotMap>,
    /// Lazy-deletion min-heap of machine cursors `(next event, machine)`
    /// driving the global merge; see [`FleetEpisode::rekey`].
    cursors: BinaryHeap<Reverse<(SimTime, usize)>>,
    records: Vec<JobRecord>,
    /// Record index → pending reduction barrier, for split jobs.
    reductions: FxHashMap<usize, Reduction>,
    jobs_completed: u64,
    jobs_rejected: u64,
    migrations: u64,
    splits: u64,
    last_finish: SimTime,
    fingerprint: u64,
}

impl FleetEpisode {
    /// Routes one arrival: validates, picks machine(s), charges the
    /// interconnect, pushes the job (or its parts) into the machine
    /// engine(s).
    fn route(
        &mut self,
        spec: &ClusterSpec,
        tenants: &[Tenant],
        engines: &mut [Engine],
        job: JobSpec,
        index: usize,
    ) {
        let machines = engines.len();
        self.fingerprint = fold_fingerprint(self.fingerprint, index as u64);
        if validate_spec(tenants.len(), &job).is_err() {
            self.jobs_rejected += 1;
            self.records.push(JobRecord {
                index,
                tenant: job.tenant,
                arrival: job.arrival,
                effective_arrival: job.arrival,
                machines: Vec::new(),
                split: None,
                migrated: false,
                finished_at: None,
                flops: job.flops(),
            });
            return;
        }
        let flops = job.flops();

        // Data-parallel split: single-layer jobs above the threshold fan
        // out across the least-loaded machines; whole DNN streams always
        // stay machine-affine.
        let want_ways = spec.split.max_ways.min(machines);
        if job.layers.len() == 1 && flops >= spec.split.min_flops && want_ways >= 2 {
            let split = split_job(&job, spec.split.kind, want_ways);
            if split.parts.len() >= 2 {
                let mut order: Vec<usize> = (0..machines).collect();
                order.sort_by_key(|&m| (self.outstanding[m], m));
                let targets: Vec<usize> = order[..split.parts.len()].to_vec();
                let effective = if split.scatter_bytes > 0 {
                    self.icn.access(job.arrival, split.scatter_bytes)
                } else {
                    job.arrival
                };
                for (part, &m) in split.parts.into_iter().zip(&targets) {
                    // Built field by field: the part owns its single
                    // layer, so no clone of the parent layer stream.
                    let part_spec = JobSpec {
                        tenant: job.tenant,
                        layers: vec![part.task],
                        arrival: effective,
                        priority: job.priority,
                        deadline: job.deadline,
                        gang_width: job.gang_width,
                    };
                    self.outstanding[m] += part_spec.flops();
                    self.push_slot(m, effective, index);
                    engines[m].push(part_spec);
                    self.rekey(&engines[m], m);
                    self.fingerprint = fold_fingerprint(self.fingerprint, m as u64);
                }
                self.fingerprint = fold_fingerprint(self.fingerprint, effective.as_fs());
                self.reductions.insert(
                    index,
                    Reduction {
                        parts_left: targets.len(),
                        end: SimTime::ZERO,
                        reduce_bytes: split.reduce_bytes,
                    },
                );
                self.splits += 1;
                // The split's primary machine becomes the tenant's home
                // (the scatter already priced the operand movement, so no
                // separate migration charge).
                self.tenant_home[job.tenant] = Some(targets[0]);
                self.records.push(JobRecord {
                    index,
                    tenant: job.tenant,
                    arrival: job.arrival,
                    effective_arrival: effective,
                    machines: targets,
                    split: Some(spec.split.kind),
                    migrated: false,
                    finished_at: None,
                    flops,
                });
                return;
            }
        }

        // Machine-affine placement.
        let m = self.place(spec.placement, machines, job.tenant);
        let migrated = self.tenant_home[job.tenant].is_some_and(|h| h != m);
        let effective = if migrated {
            // The tenant's context and this job's weights move over the
            // interconnect before the job can start on the new machine.
            let weight_bytes: u64 = job
                .layers
                .iter()
                .map(|l| l.k * l.n * l.precision.bytes())
                .sum();
            self.migrations += 1;
            self.icn.access(
                job.arrival,
                spec.interconnect.migration_bytes + weight_bytes,
            )
        } else {
            job.arrival
        };
        self.tenant_home[job.tenant] = Some(m);
        self.outstanding[m] += flops;
        self.push_slot(m, effective, index);
        let tenant = job.tenant;
        let arrival = job.arrival;
        // The routed job moves into the machine engine whole — the layer
        // stream is never cloned on the routing path.
        engines[m].push(JobSpec {
            arrival: effective,
            ..job
        });
        self.rekey(&engines[m], m);
        self.fingerprint = fold_fingerprint(self.fingerprint, m as u64);
        self.fingerprint = fold_fingerprint(self.fingerprint, effective.as_fs());
        self.records.push(JobRecord {
            index,
            tenant,
            arrival,
            effective_arrival: effective,
            machines: vec![m],
            split: None,
            migrated,
            finished_at: None,
            flops,
        });
    }

    /// Re-keys one machine in the global-merge cursor heap: pushes the
    /// machine's *current* next event. Called after every operation that
    /// can change a machine's event stream (an [`Engine::push`] during
    /// routing, an [`Engine::advance`]); superseded entries are left in
    /// the heap and discarded lazily when popped, so every machine with a
    /// pending event always has one current cursor and the heap top's
    /// first valid entry is the true fleet minimum.
    fn rekey(&mut self, engine: &Engine, machine: usize) {
        if let Some(t) = engine.next_event() {
            self.cursors.push(Reverse((t, machine)));
        }
    }

    /// The machine-affine placement decision.
    fn place(&mut self, placement: Placement, machines: usize, tenant: usize) -> usize {
        match placement {
            Placement::RoundRobin => {
                let m = self.rr % machines;
                self.rr += 1;
                m
            }
            Placement::LeastLoaded => (0..machines)
                .min_by_key(|&m| (self.outstanding[m], m))
                .expect("at least one machine"),
            Placement::TenantAffinity { spill } => {
                let home = self.tenant_home[tenant].unwrap_or(tenant % machines);
                let total: u64 = self.outstanding.iter().sum();
                // Spill when the home's load exceeds `spill`× the fleet
                // average: home·machines > spill·total, cross-multiplied
                // so the comparison stays in integers.
                let overloaded = total > 0
                    && (self.outstanding[home] as u128 * machines as u128)
                        > (spill as u128 * total as u128);
                if overloaded {
                    (0..machines)
                        .min_by_key(|&m| (self.outstanding[m], m))
                        .expect("at least one machine")
                } else {
                    home
                }
            }
        }
    }

    /// Registers one routed job with the machine's [`SlotMap`], mirroring
    /// [`Engine::push`] ordering: the engine admits pushed jobs in
    /// `(arrival, push order)` order, and pushes never predate an
    /// already-admitted arrival, so the slot map's rank `i` is the
    /// engine's job `i` by the time it can complete.
    fn push_slot(&mut self, machine: usize, at: SimTime, record: usize) {
        let slot = &mut self.slots[machine];
        slot.pending.push(Reverse((at, slot.seq, record)));
        slot.seq += 1;
    }

    /// Processes one machine-level job completion: load accounting, split
    /// reduction barriers, fleet-level completion records.
    fn complete(&mut self, machine: usize, outcome: JobOutcome) {
        let (slot_arrival, rec) = self.slots[machine].resolve(outcome.job.0 as usize);
        // The slot map assumes the engine admitted every routed job: a
        // machine-level admission rejection (queue overflow) would shift
        // all later machine-local job ids off their slots. Fail loudly
        // instead of attributing completions to the wrong records.
        assert!(
            slot_arrival == outcome.arrival && self.records[rec].tenant == outcome.tenant,
            "machine {machine} admission desync (queue overflow?): routed jobs must fit \
             the machine's ServeConfig::queue_capacity"
        );
        // Outstanding flops are a strict routed-minus-completed ledger; a
        // completion exceeding what was routed means the accounting is
        // corrupt and every load-aware placement decision after it would
        // be skewed. Debug builds fail loudly; release builds clamp.
        self.outstanding[machine] = match self.outstanding[machine].checked_sub(outcome.flops) {
            Some(rest) => rest,
            None => {
                if cfg!(debug_assertions) {
                    panic!(
                        "machine {machine} outstanding-flops underflow: completed {} flops \
                         with only {} outstanding — routed/completed accounting desynced",
                        outcome.flops, self.outstanding[machine]
                    );
                }
                0
            }
        };
        self.fingerprint = fold_fingerprint(self.fingerprint, machine as u64);
        self.fingerprint = fold_fingerprint(self.fingerprint, outcome.finished_at.as_fs());
        let finished = match self.reductions.get_mut(&rec) {
            Some(red) => {
                red.parts_left -= 1;
                red.end = red.end.max(outcome.finished_at);
                if red.parts_left > 0 {
                    return;
                }
                // Barrier cleared: the k-split pays its all-reduce on the
                // interconnect; the m-split completes with its last part.
                let red = self.reductions.remove(&rec).expect("present");
                if red.reduce_bytes > 0 {
                    self.icn.access(red.end, red.reduce_bytes)
                } else {
                    red.end
                }
            }
            None => outcome.finished_at,
        };
        self.records[rec].finished_at = Some(finished);
        self.jobs_completed += 1;
        self.last_finish = self.last_finish.max(finished);
        self.fingerprint = fold_fingerprint(self.fingerprint, finished.as_fs());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maco_serve::JobId;
    use maco_sim::SimDuration;

    fn t(ns: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_ns(ns)
    }

    fn episode(machines: usize) -> FleetEpisode {
        FleetEpisode {
            icn: LatencyBandwidthResource::new(SimDuration::ZERO, 1.0),
            outstanding: vec![0; machines],
            tenant_home: vec![None; 4],
            rr: 0,
            slots: (0..machines).map(|_| SlotMap::default()).collect(),
            cursors: BinaryHeap::new(),
            records: Vec::new(),
            reductions: FxHashMap::default(),
            jobs_completed: 0,
            jobs_rejected: 0,
            migrations: 0,
            splits: 0,
            last_finish: SimTime::ZERO,
            fingerprint: 0,
        }
    }

    /// The lazily drained slot map materialises machine-local job ids in
    /// `(effective arrival, route order)` rank — the engine's admission
    /// order — regardless of resolution order.
    #[test]
    fn slot_map_resolves_in_arrival_then_route_order() {
        let mut sm = SlotMap::default();
        sm.pending.push(Reverse((t(5), 0, 10)));
        sm.pending.push(Reverse((t(1), 1, 11)));
        sm.pending.push(Reverse((t(5), 2, 12)));
        sm.seq = 3;
        // Rank 0 is the earliest arrival; equal arrivals rank by route
        // order. Out-of-order resolution still lands on the same ranks.
        assert_eq!(sm.resolve(2), (t(5), 12));
        assert_eq!(sm.resolve(0), (t(1), 11));
        assert_eq!(sm.resolve(1), (t(5), 10));
    }

    /// Regression: a completion reporting more flops than its machine has
    /// outstanding is a corrupted routed-minus-completed ledger and must
    /// fail loudly in debug builds — `saturating_sub` used to mask it and
    /// silently skew every load-aware placement decision afterwards.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "outstanding-flops underflow")]
    fn outstanding_underflow_panics_in_debug() {
        let mut ep = episode(1);
        ep.outstanding[0] = 10;
        ep.records.push(JobRecord {
            index: 0,
            tenant: 0,
            arrival: t(0),
            effective_arrival: t(0),
            machines: vec![0],
            split: None,
            migrated: false,
            finished_at: None,
            flops: 100,
        });
        ep.push_slot(0, t(0), 0);
        ep.complete(
            0,
            JobOutcome {
                job: JobId(0),
                tenant: 0,
                arrival: t(0),
                finished_at: t(7),
                flops: 100,
            },
        );
    }
}
