//! The fleet: a front-end router over many machines, composed onto one
//! global virtual-time timeline.
//!
//! Every machine runs the *same* co-simulation a standalone
//! [`maco_serve::Server`] runs — a [`maco_serve::Engine`] driving that
//! machine's [`MacoSystem`] through the reentrant
//! `begin_gemm`/`step_gemm` core API — and the cluster merges the
//! machines' event streams: the global loop always processes the minimum
//! of (next unrouted fleet arrival, every machine's next event), routing
//! arrivals first on ties exactly like the per-machine loop does. Machines
//! share no simulated hardware, so advancing one machine never perturbs
//! another; all cross-machine coupling flows through the interconnect
//! cost model (migration transfers delay arrivals, k-split all-reduces
//! delay completions) and through the router's load accounting, both of
//! which are pure functions of previously processed events. That is what
//! makes the fleet fingerprint byte-identical across same-seed runs.
//!
//! Multi-machine engines admit work at the *router's horizon*: a
//! completion whose simulated time leaps past the next unrouted fleet
//! arrival stops its queued-arrival drain there (see [`Engine::advance`]'s
//! `bound`), so machine-local admission order always equals
//! `(arrival, push order)`; arrivals beyond the horizon are admitted
//! later at their own event times, with the time-aware node pool keeping
//! freed nodes invisible before their free instants. A one-machine
//! cluster skips the horizon entirely — with no placement freedom the
//! router routes eagerly — and is therefore bit-identical to a
//! standalone [`maco_serve::Server`] (tested, including under timestamp
//! tie storms).

use maco_core::system::MacoSystem;
use maco_serve::{validate_spec, Engine, JobOutcome, JobSpec, Tenant};
use maco_sim::{FxHashMap, LatencyBandwidthResource, SimTime};
use maco_workloads::trace::TraceRequest;

use crate::report::{fold_fingerprint, ClusterReport, JobRecord, MachineReport};
use crate::spec::{ClusterSpec, Placement};
use crate::split::split_job;

/// Errors a fleet episode can surface (the per-machine co-simulation's).
pub type ClusterError = maco_serve::ServeError;

/// The fleet: a [`ClusterSpec`] instantiated into real machines plus the
/// fleet-wide tenant registry (every tenant is registered on every
/// machine; placement decides where its jobs actually run).
pub struct Cluster {
    spec: ClusterSpec,
    tenants: Vec<Tenant>,
    systems: Vec<MacoSystem>,
}

impl Cluster {
    /// Instantiates the fleet.
    ///
    /// # Panics
    ///
    /// Panics on an empty machine list or tenant fleet (and propagates the
    /// machine configurations' own validation).
    pub fn new(spec: ClusterSpec, tenants: Vec<Tenant>) -> Self {
        assert!(!spec.machines.is_empty(), "need at least one machine");
        assert!(!tenants.is_empty(), "need at least one tenant");
        let systems = spec
            .machines
            .iter()
            .map(|m| MacoSystem::new(m.system.clone()))
            .collect();
        Cluster {
            spec,
            tenants,
            systems,
        }
    }

    /// The fleet declaration.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// The fleet-wide tenant registry.
    pub fn tenants(&self) -> &[Tenant] {
        &self.tenants
    }

    /// Number of machines.
    pub fn machines(&self) -> usize {
        self.systems.len()
    }

    /// Total compute nodes across the fleet.
    pub fn total_nodes(&self) -> usize {
        self.spec.total_nodes()
    }

    /// Serves a generated trace (see [`maco_workloads::trace`]) across the
    /// fleet: converts each request into a job and runs the episode to
    /// completion.
    ///
    /// # Errors
    ///
    /// Propagates [`ClusterError`]s from the per-machine co-simulations.
    pub fn run_trace(&mut self, trace: &[TraceRequest]) -> Result<ClusterReport, ClusterError> {
        self.run_jobs(trace.iter().map(JobSpec::from_request).collect())
    }

    /// Runs one fleet episode over `specs` (arrival-sorted internally)
    /// until every routed job has completed on its machine(s) and every
    /// pending reduction has drained.
    ///
    /// Each machine's [`maco_serve::ServeConfig::queue_capacity`] must
    /// accommodate its routed backlog: a machine-level admission overflow
    /// would desynchronise the fleet's job accounting, so the episode
    /// fails loudly (panics) instead of misattributing completions.
    ///
    /// # Errors
    ///
    /// Propagates [`ClusterError`]s from the per-machine co-simulations.
    pub fn run_jobs(&mut self, mut specs: Vec<JobSpec>) -> Result<ClusterReport, ClusterError> {
        specs.sort_by_key(|s| s.arrival);
        let machines = self.systems.len();
        for sys in &mut self.systems {
            sys.reset_shared_resources();
        }
        let mut engines: Vec<Engine> = self
            .spec
            .machines
            .iter()
            .map(|m| Engine::new(m.system.nodes, &self.tenants, &m.serve))
            .collect();
        let mut ep = FleetEpisode {
            icn: LatencyBandwidthResource::new(
                self.spec.interconnect.latency,
                self.spec.interconnect.gbps,
            ),
            outstanding: vec![0; machines],
            tenant_home: vec![None; self.tenants.len()],
            rr: 0,
            slots: vec![Vec::new(); machines],
            records: Vec::with_capacity(specs.len()),
            reductions: FxHashMap::default(),
            jobs_completed: 0,
            jobs_rejected: 0,
            migrations: 0,
            splits: 0,
            last_finish: SimTime::ZERO,
            fingerprint: 0,
        };

        // A fleet of one has no routing freedom: every job lands on
        // machine 0, nothing migrates, nothing splits. Routing eagerly is
        // therefore decision-identical to lazy routing — and it lets the
        // engine run with no external horizon, which makes the
        // one-machine cluster reproduce the standalone `Server` schedule
        // bit for bit (the contract the equivalence tests pin) even at
        // the contention corners where a bounded arrival drain would
        // reorder scheduling attempts.
        let mut cursor = 0usize;
        if machines == 1 {
            while cursor < specs.len() {
                let spec = specs[cursor].clone();
                ep.route(&self.spec, &self.tenants, &mut engines, spec, cursor);
                cursor += 1;
            }
        }

        // The global event merge: route the next fleet arrival or advance
        // the machine owning the minimum next event, arrivals first on
        // ties (so routing state is current before any same-instant step).
        loop {
            let arrival = specs.get(cursor).map(|s| s.arrival);
            let machine = engines
                .iter()
                .enumerate()
                .filter_map(|(i, e)| e.next_event().map(|t| (t, i)))
                .min();
            let arrival_first = match (arrival, machine) {
                (Some(at), Some((mt, _))) => at <= mt,
                (Some(_), None) => true,
                (None, _) => false,
            };
            if arrival_first {
                let spec = specs[cursor].clone();
                let index = cursor;
                cursor += 1;
                ep.route(&self.spec, &self.tenants, &mut engines, spec, index);
            } else if let Some((_, i)) = machine {
                if let Some(outcome) = engines[i].advance(&mut self.systems[i], arrival)? {
                    ep.complete(i, outcome);
                }
            } else {
                break;
            }
        }
        debug_assert!(ep.reductions.is_empty(), "unfinished reductions");

        let machine_reports: Vec<MachineReport> = engines
            .into_iter()
            .zip(&self.systems)
            .zip(&self.spec.machines)
            .map(|((engine, system), mspec)| MachineReport {
                name: mspec.name.clone(),
                nodes: mspec.system.nodes,
                serve: engine.finish(system),
            })
            .collect();
        let mut fp = ep.fingerprint;
        let mut makespan = ep.last_finish;
        for m in &machine_reports {
            fp = fold_fingerprint(fp, m.serve.fingerprint);
            makespan = makespan.max(SimTime::ZERO + m.serve.makespan);
        }
        fp = fold_fingerprint(fp, makespan.as_fs());
        Ok(ClusterReport {
            jobs: ep.records,
            jobs_completed: ep.jobs_completed,
            jobs_rejected: ep.jobs_rejected,
            makespan: makespan.since(SimTime::ZERO),
            total_flops: machine_reports.iter().map(|m| m.serve.total_flops).sum(),
            interconnect_bytes: ep.icn.bandwidth().bytes_transferred(),
            interconnect_busy: ep.icn.bandwidth().busy_time(),
            migrations: ep.migrations,
            splits: ep.splits,
            machines: machine_reports,
            fingerprint: fp,
        })
    }
}

/// An unfinished data-parallel reduction barrier.
struct Reduction {
    parts_left: usize,
    /// Latest part completion so far.
    end: SimTime,
    /// All-reduce bytes charged when the barrier clears (zero = m-split).
    reduce_bytes: u64,
}

/// Mutable router state of one fleet episode.
struct FleetEpisode {
    icn: LatencyBandwidthResource,
    /// Per machine: routed-minus-completed GEMM flops.
    outstanding: Vec<u64>,
    /// Per tenant: the machine its latest job ran on.
    tenant_home: Vec<Option<usize>>,
    /// Round-robin cursor.
    rr: usize,
    /// Per machine: record index per admission slot, mirroring the
    /// machine engine's arrival ordering (sorted insert by effective
    /// arrival, stable on ties) so a [`JobOutcome`]'s machine-local
    /// [`maco_serve::JobId`] maps back to the fleet record.
    slots: Vec<Vec<(SimTime, usize)>>,
    records: Vec<JobRecord>,
    /// Record index → pending reduction barrier, for split jobs.
    reductions: FxHashMap<usize, Reduction>,
    jobs_completed: u64,
    jobs_rejected: u64,
    migrations: u64,
    splits: u64,
    last_finish: SimTime,
    fingerprint: u64,
}

impl FleetEpisode {
    /// Routes one arrival: validates, picks machine(s), charges the
    /// interconnect, pushes the job (or its parts) into the machine
    /// engine(s).
    fn route(
        &mut self,
        spec: &ClusterSpec,
        tenants: &[Tenant],
        engines: &mut [Engine],
        job: JobSpec,
        index: usize,
    ) {
        let machines = engines.len();
        self.fingerprint = fold_fingerprint(self.fingerprint, index as u64);
        if validate_spec(tenants.len(), &job).is_err() {
            self.jobs_rejected += 1;
            self.records.push(JobRecord {
                index,
                tenant: job.tenant,
                arrival: job.arrival,
                effective_arrival: job.arrival,
                machines: Vec::new(),
                split: None,
                migrated: false,
                finished_at: None,
                flops: job.flops(),
            });
            return;
        }
        let flops = job.flops();

        // Data-parallel split: single-layer jobs above the threshold fan
        // out across the least-loaded machines; whole DNN streams always
        // stay machine-affine.
        let want_ways = spec.split.max_ways.min(machines);
        if job.layers.len() == 1 && flops >= spec.split.min_flops && want_ways >= 2 {
            let split = split_job(&job, spec.split.kind, want_ways);
            if split.parts.len() >= 2 {
                let mut order: Vec<usize> = (0..machines).collect();
                order.sort_by_key(|&m| (self.outstanding[m], m));
                let targets: Vec<usize> = order[..split.parts.len()].to_vec();
                let effective = if split.scatter_bytes > 0 {
                    self.icn.access(job.arrival, split.scatter_bytes)
                } else {
                    job.arrival
                };
                for (part, &m) in split.parts.iter().zip(&targets) {
                    let part_spec = JobSpec {
                        layers: vec![part.task.clone()],
                        arrival: effective,
                        ..job.clone()
                    };
                    self.outstanding[m] += part_spec.flops();
                    self.push_slot(m, effective, index);
                    engines[m].push(part_spec);
                    self.fingerprint = fold_fingerprint(self.fingerprint, m as u64);
                }
                self.fingerprint = fold_fingerprint(self.fingerprint, effective.as_fs());
                self.reductions.insert(
                    index,
                    Reduction {
                        parts_left: targets.len(),
                        end: SimTime::ZERO,
                        reduce_bytes: split.reduce_bytes,
                    },
                );
                self.splits += 1;
                // The split's primary machine becomes the tenant's home
                // (the scatter already priced the operand movement, so no
                // separate migration charge).
                self.tenant_home[job.tenant] = Some(targets[0]);
                self.records.push(JobRecord {
                    index,
                    tenant: job.tenant,
                    arrival: job.arrival,
                    effective_arrival: effective,
                    machines: targets,
                    split: Some(spec.split.kind),
                    migrated: false,
                    finished_at: None,
                    flops,
                });
                return;
            }
        }

        // Machine-affine placement.
        let m = self.place(spec.placement, machines, job.tenant);
        let migrated = self.tenant_home[job.tenant].is_some_and(|h| h != m);
        let effective = if migrated {
            // The tenant's context and this job's weights move over the
            // interconnect before the job can start on the new machine.
            let weight_bytes: u64 = job
                .layers
                .iter()
                .map(|l| l.k * l.n * l.precision.bytes())
                .sum();
            self.migrations += 1;
            self.icn.access(
                job.arrival,
                spec.interconnect.migration_bytes + weight_bytes,
            )
        } else {
            job.arrival
        };
        self.tenant_home[job.tenant] = Some(m);
        self.outstanding[m] += flops;
        self.push_slot(m, effective, index);
        let spec_for_machine = JobSpec {
            arrival: effective,
            ..job.clone()
        };
        engines[m].push(spec_for_machine);
        self.fingerprint = fold_fingerprint(self.fingerprint, m as u64);
        self.fingerprint = fold_fingerprint(self.fingerprint, effective.as_fs());
        self.records.push(JobRecord {
            index,
            tenant: job.tenant,
            arrival: job.arrival,
            effective_arrival: effective,
            machines: vec![m],
            split: None,
            migrated,
            finished_at: None,
            flops,
        });
    }

    /// The machine-affine placement decision.
    fn place(&mut self, placement: Placement, machines: usize, tenant: usize) -> usize {
        match placement {
            Placement::RoundRobin => {
                let m = self.rr % machines;
                self.rr += 1;
                m
            }
            Placement::LeastLoaded => (0..machines)
                .min_by_key(|&m| (self.outstanding[m], m))
                .expect("at least one machine"),
            Placement::TenantAffinity { spill } => {
                let home = self.tenant_home[tenant].unwrap_or(tenant % machines);
                let total: u64 = self.outstanding.iter().sum();
                // Spill when the home's load exceeds `spill`× the fleet
                // average: home·machines > spill·total, cross-multiplied
                // so the comparison stays in integers.
                let overloaded = total > 0
                    && (self.outstanding[home] as u128 * machines as u128)
                        > (spill as u128 * total as u128);
                if overloaded {
                    (0..machines)
                        .min_by_key(|&m| (self.outstanding[m], m))
                        .expect("at least one machine")
                } else {
                    home
                }
            }
        }
    }

    /// Mirrors [`Engine::push`]'s sorted insertion so machine-local job
    /// ids (admission order) map back to fleet records: the engine admits
    /// pushed jobs in `(arrival, push order)` order, and pushes never
    /// predate an already-admitted arrival, so the i-th element of this
    /// list is the engine's job i by the time it can complete.
    fn push_slot(&mut self, machine: usize, at: SimTime, record: usize) {
        let slots = &mut self.slots[machine];
        let mut idx = slots.len();
        while idx > 0 && slots[idx - 1].0 > at {
            idx -= 1;
        }
        slots.insert(idx, (at, record));
    }

    /// Processes one machine-level job completion: load accounting, split
    /// reduction barriers, fleet-level completion records.
    fn complete(&mut self, machine: usize, outcome: JobOutcome) {
        let (slot_arrival, rec) = self.slots[machine][outcome.job.0 as usize];
        // The slot list assumes the engine admitted every routed job: a
        // machine-level admission rejection (queue overflow) would shift
        // all later machine-local job ids off their slots. Fail loudly
        // instead of attributing completions to the wrong records.
        assert!(
            slot_arrival == outcome.arrival && self.records[rec].tenant == outcome.tenant,
            "machine {machine} admission desync (queue overflow?): routed jobs must fit \
             the machine's ServeConfig::queue_capacity"
        );
        self.outstanding[machine] = self.outstanding[machine].saturating_sub(outcome.flops);
        self.fingerprint = fold_fingerprint(self.fingerprint, machine as u64);
        self.fingerprint = fold_fingerprint(self.fingerprint, outcome.finished_at.as_fs());
        let finished = match self.reductions.get_mut(&rec) {
            Some(red) => {
                red.parts_left -= 1;
                red.end = red.end.max(outcome.finished_at);
                if red.parts_left > 0 {
                    return;
                }
                // Barrier cleared: the k-split pays its all-reduce on the
                // interconnect; the m-split completes with its last part.
                let red = self.reductions.remove(&rec).expect("present");
                if red.reduce_bytes > 0 {
                    self.icn.access(red.end, red.reduce_bytes)
                } else {
                    red.end
                }
            }
            None => outcome.finished_at,
        };
        self.records[rec].finished_at = Some(finished);
        self.jobs_completed += 1;
        self.last_finish = self.last_finish.max(finished);
        self.fingerprint = fold_fingerprint(self.fingerprint, finished.as_fs());
    }
}
