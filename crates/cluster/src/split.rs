//! Data-parallel GEMM splitting across machines.
//!
//! A single-layer job above the [`SplitSpec`](crate::SplitSpec) threshold
//! is carved into per-machine parts: a **k-split** gives every machine the
//! full `m×n` output over one span of the reduction (partials combined by
//! a modeled all-reduce), an **m-split** gives every machine a disjoint
//! row slab (no reduction). Both conserve flops exactly. The k-split's
//! numerics are not hand-waved: combining partials in span order at the
//! working precision is bit-identical to the unsplit kernel, which
//! [`ksplit_functional`] demonstrates on real data (and the cluster
//! property suite proves at 128 random shapes).

use maco_core::gemm_plus::{split_task_k, split_task_m, GemmPlusTask, ReductionCheckpoint};
use maco_isa::Precision;
use maco_mmae::kernels::{
    matmul_into, matmul_ksplit_into, matmul_ksplit_resume_into, GemmOperands, PackScratch,
};
use maco_serve::JobSpec;

use crate::spec::SplitKind;

/// One machine's share of a split job.
#[derive(Debug, Clone)]
pub struct SplitPart {
    /// The part's layer (one `k`-span or row slab of the original).
    pub task: GemmPlusTask,
}

/// A job split into data-parallel parts, with the interconnect byte counts
/// the fleet charges for it.
#[derive(Debug, Clone)]
pub struct SplitJob {
    /// Per-machine parts, in span order (`parts.len()` ≤ requested ways;
    /// degenerate spans are dropped, so a tiny layer may split fewer ways
    /// than asked — or not at all).
    pub parts: Vec<SplitPart>,
    /// Operand bytes that must cross the interconnect before the parts can
    /// start (the share of A and B not already resident on the primary
    /// machine).
    pub scatter_bytes: u64,
    /// All-reduce bytes charged when the last part finishes (zero for
    /// m-splits, which need no reduction).
    pub reduce_bytes: u64,
}

/// Splits `spec`'s single layer `ways` ways along `kind`'s dimension.
///
/// Byte accounting: a `w`-way scatter of a *partitioned* operand moves
/// `(w-1)/w` of it (each non-primary machine gets its share), a
/// *replicated* operand moves `(w-1)` whole copies (m-split's B), and the
/// k-split's ring all-reduce moves `2·(w-1)/w` of the output per
/// participant, summed over participants to one aggregate fabric
/// transfer.
///
/// # Panics
///
/// Panics if `spec` is not a single-layer job or `ways` is zero.
pub fn split_job(spec: &JobSpec, kind: SplitKind, ways: usize) -> SplitJob {
    assert_eq!(spec.layers.len(), 1, "only single-layer jobs split");
    assert!(ways >= 1, "need at least one way");
    let layer = &spec.layers[0];
    let tasks = match kind {
        SplitKind::KSplit => split_task_k(layer, ways),
        SplitKind::MSplit => split_task_m(layer, ways),
    };
    let w = tasks.len() as u64;
    let e = layer.precision.bytes();
    let a_bytes = layer.m * layer.k * e;
    let b_bytes = layer.k * layer.n * e;
    let output_bytes = layer.m * layer.n * e;
    let (scatter_bytes, reduce_bytes) = if w <= 1 {
        (0, 0)
    } else {
        match kind {
            // k-split partitions both operands (A's k-columns, B's
            // k-rows): each non-primary machine receives its 1/w share.
            SplitKind::KSplit => (
                (a_bytes + b_bytes) * (w - 1) / w,
                2 * output_bytes * (w - 1),
            ),
            // m-split partitions only A; every non-primary machine needs
            // the *whole* of B, so B replicates (w-1) times.
            SplitKind::MSplit => (a_bytes * (w - 1) / w + b_bytes * (w - 1), 0),
        }
    };
    SplitJob {
        parts: tasks.into_iter().map(|task| SplitPart { task }).collect(),
        scatter_bytes,
        reduce_bytes,
    }
}

/// Functionally evaluates a k-split GEMM the way the fleet's all-reduce
/// combines it — every machine computes its `k`-span partial and the
/// partials merge in span order at the working precision — and returns the
/// result, which is bit-identical to one unsplit kernel invocation (see
/// [`maco_mmae::kernels::matmul_ksplit_into`]). `splits` holds the span
/// lengths (e.g. from [`maco_core::gemm_plus::partition_depth`]).
///
/// # Panics
///
/// Panics if the spans do not cover `ops.k` exactly.
pub fn ksplit_functional(ops: GemmOperands<'_>, precision: Precision, splits: &[u64]) -> Vec<f64> {
    let mut pack = PackScratch::default();
    let mut y = vec![0.0; ops.m * ops.n];
    matmul_ksplit_into(&mut pack, ops, precision, splits, &mut y);
    y
}

/// The unsplit reference for [`ksplit_functional`] comparisons.
pub fn unsplit_functional(ops: GemmOperands<'_>, precision: Precision) -> Vec<f64> {
    let mut pack = PackScratch::default();
    let mut y = vec![0.0; ops.m * ops.n];
    matmul_into(&mut pack, ops, precision, &mut y);
    y
}

/// Functionally evaluates a k-split reduction that *loses a machine*
/// mid-reduction the way the fleet recovers it: spans before `fail_at`
/// complete and their chained partial is the checkpoint
/// ([`ReductionCheckpoint::completed_prefix_k`] marks the resume offset),
/// the failed span's in-flight work is discarded, and a surviving machine
/// resumes the chain from the checkpoint through
/// [`matmul_ksplit_resume_into`]. The result is bit-identical to the
/// unfailed chain — and therefore to the unsplit kernel (the cluster
/// property suite proves both at 128 random shapes).
///
/// # Panics
///
/// Panics if the spans do not cover `ops.k` exactly or `fail_at` is out
/// of range.
pub fn ksplit_recover_functional(
    ops: GemmOperands<'_>,
    precision: Precision,
    splits: &[u64],
    fail_at: usize,
) -> Vec<f64> {
    assert!(fail_at < splits.len(), "failed span out of range");
    let mut ckpt = ReductionCheckpoint::new(splits.to_vec());
    for i in 0..fail_at {
        ckpt.complete(i);
    }
    // Checkpoint: the chained partial of the completed span prefix. The
    // failed span contributed nothing durable — its partial dies with
    // the machine.
    let mut pack = PackScratch::default();
    let mut y = vec![0.0; ops.m * ops.n];
    let prefix = ckpt.lost_spans()[0];
    debug_assert_eq!(
        splits[..prefix].iter().sum::<u64>(),
        ckpt.completed_prefix_k()
    );
    if prefix > 0 {
        // Run only the completed prefix by chaining spans 0..prefix.
        let k_done = ckpt.completed_prefix_k() as usize;
        let a_prefix: Vec<f64> = (0..ops.m)
            .flat_map(|r| ops.a[r * ops.k..r * ops.k + k_done].iter().copied())
            .collect();
        let b_prefix = &ops.b[..k_done * ops.n];
        let part = GemmOperands::new(&a_prefix, b_prefix, ops.c, ops.m, ops.n, k_done);
        matmul_ksplit_into(&mut pack, part, precision, &splits[..prefix], &mut y);
    }
    // Recovery: the surviving machine resumes the chain from the
    // checkpoint, re-executing the lost span and everything after it.
    matmul_ksplit_resume_into(&mut pack, ops, precision, splits, prefix, &mut y);
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use maco_sim::{SimTime, SplitMix64};

    fn spec(m: u64, n: u64, k: u64) -> JobSpec {
        JobSpec::single(
            0,
            GemmPlusTask::gemm(m, n, k, Precision::Fp32),
            SimTime::ZERO,
        )
    }

    #[test]
    fn ksplit_conserves_flops_and_prices_reduce() {
        let s = spec(512, 512, 1000);
        let split = split_job(&s, SplitKind::KSplit, 4);
        assert_eq!(split.parts.len(), 4);
        let total: u64 = split.parts.iter().map(|p| p.task.flops()).sum();
        assert_eq!(total, s.flops());
        assert!(split.reduce_bytes > 0, "k-split pays an all-reduce");
        assert!(split.scatter_bytes > 0);
    }

    #[test]
    fn msplit_needs_no_reduce_but_replicates_b() {
        let s = spec(512, 512, 1000);
        let split = split_job(&s, SplitKind::MSplit, 4);
        let total: u64 = split.parts.iter().map(|p| p.task.flops()).sum();
        assert_eq!(total, s.flops());
        assert_eq!(split.reduce_bytes, 0);
        // B goes whole to every non-primary machine, so the m-split
        // scatter outweighs the k-split's partitioned-operand scatter.
        let ksplit = split_job(&s, SplitKind::KSplit, 4);
        assert!(split.scatter_bytes > ksplit.scatter_bytes);
        let e = 4; // fp32
        assert_eq!(
            split.scatter_bytes,
            512 * 1000 * e * 3 / 4 + 1000 * 512 * e * 3
        );
    }

    #[test]
    fn degenerate_extents_split_fewer_ways() {
        let s = spec(512, 512, 2);
        let split = split_job(&s, SplitKind::KSplit, 4);
        assert_eq!(split.parts.len(), 2, "only two non-empty k-spans");
        let one = split_job(&s, SplitKind::KSplit, 1);
        assert_eq!(one.parts.len(), 1);
        assert_eq!(one.scatter_bytes, 0);
        assert_eq!(one.reduce_bytes, 0);
    }

    /// Losing any machine mid-reduction and resuming from the completed
    /// span prefix reproduces the unfailed chain bit for bit, at every
    /// precision — the numeric contract the fleet's failover relies on.
    #[test]
    fn functional_ksplit_recovery_matches_unfailed() {
        let (m, n, k) = (6, 7, 15);
        let mut rng = SplitMix64::new(11);
        let a: Vec<f64> = (0..m * k).map(|_| rng.next_signed_unit()).collect();
        let b: Vec<f64> = (0..k * n).map(|_| rng.next_signed_unit()).collect();
        let c: Vec<f64> = (0..m * n).map(|_| rng.next_signed_unit()).collect();
        let ops = GemmOperands::new(&a, &b, &c, m, n, k);
        let splits = [6, 5, 4];
        for p in [Precision::Fp64, Precision::Fp32, Precision::Fp16] {
            let unfailed = ksplit_functional(ops, p, &splits);
            for fail_at in 0..splits.len() {
                let recovered = ksplit_recover_functional(ops, p, &splits, fail_at);
                assert!(
                    unfailed
                        .iter()
                        .zip(&recovered)
                        .all(|(w, s)| w.to_bits() == s.to_bits()),
                    "{p:?} recovery from span {fail_at} diverged"
                );
            }
        }
    }

    /// The checkpoint only trusts the *contiguous* completed prefix: a
    /// span completed behind a lost one cannot be folded in early without
    /// changing the accumulation order.
    #[test]
    fn checkpoint_prefix_ignores_spans_behind_a_gap() {
        let mut ckpt = ReductionCheckpoint::new(vec![4, 3, 2, 1]);
        ckpt.complete(0);
        ckpt.complete(2); // completed, but behind the lost span 1
        assert_eq!(ckpt.completed_prefix_k(), 4);
        assert_eq!(ckpt.lost_spans(), vec![1, 2, 3]);
        assert!(!ckpt.is_complete());
        ckpt.complete(1);
        ckpt.complete(3);
        assert_eq!(ckpt.completed_prefix_k(), 10);
        assert!(ckpt.is_complete());
        assert!(ckpt.lost_spans().is_empty());
        assert_eq!(ckpt.spans(), &[4, 3, 2, 1]);
    }

    #[test]
    fn functional_ksplit_matches_unsplit() {
        let (m, n, k) = (8, 5, 12);
        let mut rng = SplitMix64::new(7);
        let a: Vec<f64> = (0..m * k).map(|_| rng.next_signed_unit()).collect();
        let b: Vec<f64> = (0..k * n).map(|_| rng.next_signed_unit()).collect();
        let c: Vec<f64> = (0..m * n).map(|_| rng.next_signed_unit()).collect();
        let ops = GemmOperands::new(&a, &b, &c, m, n, k);
        for p in [Precision::Fp64, Precision::Fp32, Precision::Fp16] {
            let whole = unsplit_functional(ops, p);
            let split = ksplit_functional(ops, p, &[5, 4, 3]);
            assert!(
                whole
                    .iter()
                    .zip(&split)
                    .all(|(w, s)| w.to_bits() == s.to_bits()),
                "{p:?} k-split diverged"
            );
        }
    }
}
