//! # maco-cluster — scale-out serving across a fleet of MACO machines
//!
//! The paper evaluates one 16-node chip; a production deployment puts a
//! *fleet* of them behind one front door. This crate is that front door:
//! a declarative [`ClusterSpec`] names the machines (heterogeneous node
//! counts and CCM bandwidths allowed), the inter-machine interconnect
//! cost model, the placement policy and the data-parallel split rule, and
//! [`Cluster`] runs multi-tenant traces across the whole fleet on one
//! global virtual-time timeline.
//!
//! * [`spec`] — [`ClusterSpec`], [`MachineSpec`], [`InterconnectSpec`],
//!   [`Placement`] (round-robin / least-loaded / tenant-affinity with
//!   spill) and [`SplitSpec`].
//! * [`cluster`] — [`Cluster`]: the front-end router and the global event
//!   merge over per-machine [`maco_serve::Engine`]s. Machines share no
//!   simulated hardware; all coupling flows through the interconnect
//!   (migration transfers, scatters, all-reduces) and the router's load
//!   accounting, keeping fleet schedules byte-identical across same-seed
//!   runs.
//! * [`split`] — data-parallel GEMM splitting: `k`-split (modeled
//!   all-reduce, numerically bit-identical to the unsplit kernel) and
//!   `m`-split (no reduction).
//! * [`report`] — [`ClusterReport`]: fleet latency/throughput/fairness,
//!   per-machine serving reports, interconnect traffic and the cluster
//!   fingerprint the CI strict gate pins.
//!
//! The fleet is also where failures live: a [`FaultSpec`] schedules
//! deterministic machine fail-stops (with optional recovery) and
//! interconnect degradation windows as first-class events on the global
//! timeline. A failed machine's in-flight and queued jobs are evicted,
//! checkpointed at their last completed layer, and re-placed on
//! surviving machines after paying the state transfer over the
//! interconnect — no admitted job is ever lost
//! ([`report::FaultReport::jobs_lost`] is always 0). An optional
//! [`AutoscalerSpec`] grows and shrinks the active placement set against
//! sliding arrival-rate/deadline-miss windows. The failure layer keeps
//! its own event fingerprint, so fault-free fleet schedules stay
//! byte-identical to the pre-fault router.
//!
//! # Example
//!
//! ```
//! use maco_cluster::{Cluster, ClusterSpec, Placement};
//! use maco_serve::Tenant;
//! use maco_workloads::trace::{self, TraceConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Four 4-node machines behind a tenant-affinity router.
//! let spec = ClusterSpec::uniform(4, 4)
//!     .with_placement(Placement::TenantAffinity { spill: 2 });
//! let mut fleet = Cluster::new(spec, Tenant::fleet(4));
//! let trace = trace::generate(&TraceConfig { tenants: 4, requests: 6, ..TraceConfig::quick(3) });
//! let report = fleet.run_trace(&trace)?;
//! assert_eq!(report.jobs_completed, 6);
//! // Same seed, same fleet schedule — byte for byte.
//! let report2 = fleet.run_trace(&trace)?;
//! assert_eq!(report.fingerprint, report2.fingerprint);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

pub mod cluster;
pub mod report;
pub mod spec;
pub mod split;

pub use cluster::{Cluster, ClusterError};
pub use report::{
    ClusterDiagnostics, ClusterReport, FaultReport, JobRecord, MachineReport, ScaleEvent,
};
pub use spec::{
    AutoscalerSpec, ClusterSpec, DegradationWindow, FaultSpec, InterconnectSpec, MachineFault,
    MachineSpec, Placement, SplitKind, SplitSpec,
};
pub use split::{split_job, SplitJob};

/// Re-exported telemetry handle: attach with [`Cluster::set_trace_sink`]
/// to record fleet events (routing, faults, re-placements, autoscaling)
/// and every machine's job-lifecycle events on one shared timeline.
pub use maco_telemetry::TraceSink;
