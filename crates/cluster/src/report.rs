//! Fleet-wide reports: per-machine serving outcomes, global job records,
//! interconnect traffic and the cluster fingerprint.

use std::fmt;

use maco_serve::ServeReport;
use maco_sim::{SimDuration, SimTime, Stats};
use maco_telemetry::Log2Histogram;

use crate::spec::SplitKind;

/// Re-export of the workspace-wide fingerprint fold (one implementation,
/// shared by every determinism gate).
pub use maco_sim::fold_fingerprint;

/// One machine's outcome over a cluster episode.
#[derive(Debug, Clone)]
pub struct MachineReport {
    /// Machine display name (from the spec).
    pub name: String,
    /// The machine's compute node count.
    pub nodes: usize,
    /// The machine-local serving report (leases, tenant stats, schedule
    /// fingerprint — everything a standalone [`maco_serve::Server`] run
    /// reports). For a machine that failed and recovered this is the
    /// merge of its incarnations' reports (sums and maxima; fingerprints
    /// folded in incarnation order, lease logs concatenated — lease job
    /// ids are incarnation-local).
    pub serve: ServeReport,
    /// Engine incarnations this machine ran (1 + completed fail-stops).
    pub incarnations: u32,
}

/// Merges the serving reports of one machine's successive incarnations (a
/// failed machine's engine is retired at each fail-stop and a fresh one
/// started for the recovery) into the single per-machine view the fleet
/// report exposes. With one incarnation this is the identity.
pub(crate) fn merge_serve_reports(reports: Vec<ServeReport>) -> ServeReport {
    let mut iter = reports.into_iter();
    let mut merged = iter.next().expect("at least one incarnation");
    for r in iter {
        debug_assert_eq!(merged.tenants.len(), r.tenants.len());
        for (a, b) in merged.tenants.iter_mut().zip(r.tenants) {
            a.submitted += b.submitted;
            a.completed += b.completed;
            a.rejected += b.rejected;
            a.flops += b.flops;
            a.latency_sum += b.latency_sum;
            a.latency_max = a.latency_max.max(b.latency_max);
            a.deadline_misses += b.deadline_misses;
            a.peak_mtq = a.peak_mtq.max(b.peak_mtq);
            a.peak_stq = a.peak_stq.max(b.peak_stq);
            a.latency_hist.merge(&b.latency_hist);
        }
        merged.jobs_completed += r.jobs_completed;
        merged.jobs_rejected += r.jobs_rejected;
        merged.makespan = merged.makespan.max(r.makespan);
        merged.total_flops += r.total_flops;
        merged.machine_peak_mtq = merged.machine_peak_mtq.max(r.machine_peak_mtq);
        merged.machine_peak_stq = merged.machine_peak_stq.max(r.machine_peak_stq);
        merged.leases.extend(r.leases);
        merged.queue_depth_hist.merge(&r.queue_depth_hist);
        merged.machine_stats.merge(&r.machine_stats);
        merged.fingerprint = fold_fingerprint(merged.fingerprint, r.fingerprint);
    }
    merged
}

impl MachineReport {
    /// Machine throughput in GFLOPS over the *fleet* makespan — the
    /// utilisation view: what share of the episode this machine spent
    /// doing useful work.
    pub fn gflops_over(&self, fleet_makespan: SimDuration) -> f64 {
        if fleet_makespan.is_zero() {
            0.0
        } else {
            self.serve.total_flops as f64 / fleet_makespan.as_ns()
        }
    }
}

/// The routing history of one submitted job.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Position in the arrival-sorted submitted stream.
    pub index: usize,
    /// Submitting tenant.
    pub tenant: usize,
    /// Original arrival time at the front-end router.
    pub arrival: SimTime,
    /// Arrival time on the target machine(s), after any migration or
    /// scatter delay on the interconnect.
    pub effective_arrival: SimTime,
    /// Participating machines, in part order (one entry unless split).
    pub machines: Vec<usize>,
    /// The data-parallel split applied, if any.
    pub split: Option<SplitKind>,
    /// Whether routing this job moved its tenant across machines (and
    /// paid the migration transfer).
    pub migrated: bool,
    /// Times this job (or one of its split parts) was evicted by a
    /// machine failure and re-placed on a surviving machine.
    pub requeues: u32,
    /// Fleet-level completion time (all parts done, reductions included);
    /// `None` for jobs rejected at admission.
    pub finished_at: Option<SimTime>,
    /// Total GEMM flops.
    pub flops: u64,
    /// Interconnect traffic attributed to this job, in **byte·link
    /// crossings** over the near-square fleet grid: its migration state
    /// transfers, split operand scatter, all-reduce combine, and
    /// eviction state transfers — each charged exactly once, weighted by
    /// the fleet links between source and destination machine. On a
    /// fleet whose machines are all one link apart this equals the raw
    /// wire bytes; in general a byte crossing two links counts twice,
    /// which is what communication-avoiding placement minimises.
    /// Summing over jobs gives the same total as
    /// [`ClusterReport::machine_interconnect_bytes`].
    pub interconnect_bytes: u64,
}

impl JobRecord {
    /// End-to-end latency (router arrival → fleet completion), when the
    /// job completed.
    pub fn latency(&self) -> Option<SimDuration> {
        self.finished_at.map(|t| t.since(self.arrival))
    }
}

/// Router-health diagnostics: counters that are always zero in a healthy
/// episode, surfaced so release builds cannot silently paper over
/// accounting corruption.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterDiagnostics {
    /// Times the outstanding-flops ledger clamped a checked-subtraction
    /// underflow. Debug builds panic at the same point; release builds
    /// clamp to zero *and count it here* so the desync is never silent —
    /// every test asserts this stays 0.
    pub outstanding_clamps: u64,
}

/// One autoscaler action on the active machine set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaleEvent {
    /// When the decision was taken (a routed arrival's instant).
    pub at: SimTime,
    /// True = activated a standby machine; false = drained one.
    pub grew: bool,
    /// Active machine count after the action.
    pub active_after: usize,
}

/// Failure/elasticity outcome of one fleet episode. With an empty
/// [`crate::spec::FaultSpec`] and no autoscaler every counter is zero,
/// `availability` is 1.0 and `fingerprint` is 0.
#[derive(Debug, Clone)]
pub struct FaultReport {
    /// Machine fail-stop events processed.
    pub failures: u64,
    /// Machine recoveries processed.
    pub recoveries: u64,
    /// Evicted jobs (or split parts) re-placed on surviving machines.
    pub jobs_replaced: u64,
    /// Interconnect bytes charged for re-placement state transfer
    /// (migration context + remaining weight bytes per evicted job).
    pub replaced_bytes: u64,
    /// Admitted jobs that finished nowhere — the fail-stop contract is
    /// that this is **always 0**: every evicted remainder is re-placed.
    pub jobs_lost: u64,
    /// Alive machine-time fraction over the episode makespan (1.0 = no
    /// downtime).
    pub availability: f64,
    /// Worst per-failure recovery latency: failure instant to the last
    /// evicted remainder's effective re-arrival (0 for failures that
    /// evicted nothing).
    pub recovery_latency_max: SimDuration,
    /// Mean per-failure recovery latency.
    pub recovery_latency_mean: SimDuration,
    /// Flops of jobs that completed within their deadline (jobs with no
    /// deadline always count) — the SLO-weighted portion of
    /// `total_flops`.
    pub goodput_flops: u64,
    /// Fleet-level deadline misses (router arrival → fleet completion,
    /// reduction tails included).
    pub deadline_misses: u64,
    /// Autoscaler actions, in decision order.
    pub scale_events: Vec<ScaleEvent>,
    /// Largest active machine set the autoscaler ran (fleet size when no
    /// autoscaler is configured).
    pub peak_active: usize,
    /// Order-sensitive fold of every fault event, eviction, re-placement
    /// and scaling action — the failure layer's own determinism gate,
    /// separate from the schedule fingerprint. 0 with no faults and no
    /// autoscaler.
    pub fingerprint: u64,
}

/// The outcome of one fleet episode.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Per-machine reports, in fleet index order.
    pub machines: Vec<MachineReport>,
    /// Per-job routing and completion records, in arrival order.
    pub jobs: Vec<JobRecord>,
    /// Jobs that ran to fleet-level completion (a split job counts once).
    pub jobs_completed: u64,
    /// Jobs refused at router admission.
    pub jobs_rejected: u64,
    /// Fleet makespan: start of time to the last fleet-level completion
    /// (reduction tails included).
    pub makespan: SimDuration,
    /// Total GEMM flops served across the fleet.
    pub total_flops: u64,
    /// Raw wire bytes moved across the inter-machine interconnect
    /// (migrations, scatters, reductions) — the serialisation/timing
    /// ledger, independent of which machines the bytes moved between.
    pub interconnect_bytes: u64,
    /// Cumulative interconnect busy time (serialisation only).
    pub interconnect_busy: SimDuration,
    /// Per-machine attributed interconnect traffic in byte·link
    /// crossings, in fleet index order, charged to each transfer's hub
    /// machine (old home of a migration, scatter/all-reduce anchor,
    /// failed machine of an eviction). Sums to the per-job totals in
    /// `jobs`; see [`JobRecord::interconnect_bytes`].
    pub machine_interconnect_bytes: Vec<u64>,
    /// The byte-metric fingerprint: an order-sensitive fold of every
    /// job's attributed bytes (arrival order) then every machine's total
    /// — pinned by the `placement_sfc` perf scenario.
    pub interconnect_fingerprint: u64,
    /// Cross-machine tenant migrations the router charged.
    pub migrations: u64,
    /// Jobs the router split data-parallel.
    pub splits: u64,
    /// Failure/elasticity metrics (all-zero and availability 1.0 for a
    /// healthy, non-elastic fleet).
    pub fault: FaultReport,
    /// Router-health diagnostics (always zero in a healthy episode).
    pub diagnostics: ClusterDiagnostics,
    /// Log2 histogram of end-to-end job latencies (router arrival → fleet
    /// completion, reduction tails included) in integer nanoseconds — the
    /// source of the fleet-level p50/p95/p99 figures.
    pub latency_hist: Log2Histogram,
    /// Order-sensitive fold of every routing decision, completion and
    /// machine schedule fingerprint — byte-identical across same-seed
    /// runs.
    pub fingerprint: u64,
}

impl ClusterReport {
    /// Aggregate fleet throughput in GFLOPS over the makespan.
    pub fn total_gflops(&self) -> f64 {
        if self.makespan.is_zero() {
            0.0
        } else {
            self.total_flops as f64 / self.makespan.as_ns()
        }
    }

    /// Fleet-wide served flops per tenant (summed across machines).
    pub fn per_tenant_flops(&self) -> Vec<u64> {
        let tenants = self.machines.first().map_or(0, |m| m.serve.tenants.len());
        (0..tenants)
            .map(|t| self.machines.iter().map(|m| m.serve.tenants[t].flops).sum())
            .collect()
    }

    /// Jain's fairness index over fleet-wide weighted tenant service,
    /// across tenants that submitted work anywhere in the fleet.
    pub fn fairness(&self) -> f64 {
        let tenants = self.machines.first().map_or(0, |m| m.serve.tenants.len());
        let xs: Vec<f64> = (0..tenants)
            .filter(|&t| {
                self.machines
                    .iter()
                    .any(|m| m.serve.tenants[t].submitted > 0)
            })
            .map(|t| {
                let flops: u64 = self.machines.iter().map(|m| m.serve.tenants[t].flops).sum();
                let weight = self.machines[0].serve.tenants[t].weight;
                flops as f64 / weight as f64
            })
            .collect();
        if xs.is_empty() {
            return 1.0;
        }
        let sum: f64 = xs.iter().sum();
        let sq: f64 = xs.iter().map(|x| x * x).sum();
        if sq == 0.0 {
            1.0
        } else {
            (sum * sum) / (xs.len() as f64 * sq)
        }
    }

    /// Mean attributed interconnect traffic (byte·link crossings, see
    /// [`JobRecord::interconnect_bytes`]) per non-rejected job — the
    /// communication-avoiding placement figure of merit (lower is
    /// better at equal served work).
    pub fn interconnect_bytes_per_job(&self) -> f64 {
        let routed = self.jobs.len() as u64 - self.jobs_rejected;
        if routed == 0 {
            0.0
        } else {
            let attributed: u64 = self.jobs.iter().map(|j| j.interconnect_bytes).sum();
            attributed as f64 / routed as f64
        }
    }

    /// Mean end-to-end latency over completed jobs.
    pub fn mean_latency(&self) -> SimDuration {
        let done: Vec<SimDuration> = self.jobs.iter().filter_map(JobRecord::latency).collect();
        if done.is_empty() {
            return SimDuration::ZERO;
        }
        let sum: u64 = done.iter().map(|d| d.as_fs()).sum();
        SimDuration::from_fs(sum / done.len() as u64)
    }

    /// SLO-weighted throughput in GFLOPS: deadline-respecting flops over
    /// the makespan.
    pub fn goodput_gflops(&self) -> f64 {
        if self.makespan.is_zero() {
            0.0
        } else {
            self.fault.goodput_flops as f64 / self.makespan.as_ns()
        }
    }

    /// Median end-to-end latency (log2-bucket upper bound).
    pub fn latency_p50(&self) -> SimDuration {
        SimDuration::from_ns(self.latency_hist.p50())
    }

    /// 95th-percentile end-to-end latency (log2-bucket upper bound).
    pub fn latency_p95(&self) -> SimDuration {
        SimDuration::from_ns(self.latency_hist.p95())
    }

    /// 99th-percentile end-to-end latency (log2-bucket upper bound).
    pub fn latency_p99(&self) -> SimDuration {
        SimDuration::from_ns(self.latency_hist.p99())
    }

    /// Tenant `t`'s machine-level completion-latency histogram, merged
    /// across every machine (and engine incarnation) in the fleet.
    pub fn tenant_latency_hist(&self, t: usize) -> Log2Histogram {
        let mut h = Log2Histogram::new();
        for m in &self.machines {
            h.merge(&m.serve.tenants[t].latency_hist);
        }
        h
    }

    /// Fleet-wide hardware-counter rollup: every machine's
    /// [`maco_core::system::MacoSystem::stats_snapshot`] merged by
    /// addition ([`Stats::merge`]) — TLB lookups/misses, DRAM/NoC traffic
    /// and CCM activity summed across the fleet.
    pub fn fleet_stats(&self) -> Stats {
        let mut s = Stats::new();
        for m in &self.machines {
            s.merge(&m.serve.machine_stats);
        }
        s
    }

    /// The fingerprint as the 16-hex-digit string reports embed.
    pub fn fingerprint_hex(&self) -> String {
        format!("{:016x}", self.fingerprint)
    }

    /// The report as one flat JSON object (no external serializer): the
    /// headline counters, fleet latency percentiles, availability,
    /// goodput, the router diagnostics and per-tenant latency
    /// percentiles. Deterministic field order; integer nanoseconds and
    /// fixed-precision floats only.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push('{');
        s.push_str(&format!("\"jobs_completed\": {}", self.jobs_completed));
        s.push_str(&format!(", \"jobs_rejected\": {}", self.jobs_rejected));
        s.push_str(&format!(
            ", \"makespan_ns\": {}",
            self.makespan.as_fs() / maco_sim::time::FS_PER_NS
        ));
        s.push_str(&format!(", \"total_gflops\": {:.3}", self.total_gflops()));
        s.push_str(&format!(", \"fairness\": {:.6}", self.fairness()));
        s.push_str(&format!(
            ", \"latency_p50_ns\": {}",
            self.latency_hist.p50()
        ));
        s.push_str(&format!(
            ", \"latency_p95_ns\": {}",
            self.latency_hist.p95()
        ));
        s.push_str(&format!(
            ", \"latency_p99_ns\": {}",
            self.latency_hist.p99()
        ));
        s.push_str(&format!(", \"migrations\": {}", self.migrations));
        s.push_str(&format!(", \"splits\": {}", self.splits));
        s.push_str(&format!(
            ", \"interconnect_bytes\": {}",
            self.interconnect_bytes
        ));
        s.push_str(&format!(
            ", \"interconnect_bytes_per_job\": {:.3}",
            self.interconnect_bytes_per_job()
        ));
        s.push_str(&format!(
            ", \"interconnect_fingerprint\": \"{:016x}\"",
            self.interconnect_fingerprint
        ));
        s.push_str(&format!(", \"failures\": {}", self.fault.failures));
        s.push_str(&format!(
            ", \"jobs_replaced\": {}",
            self.fault.jobs_replaced
        ));
        s.push_str(&format!(", \"jobs_lost\": {}", self.fault.jobs_lost));
        s.push_str(&format!(
            ", \"availability\": {:.6}",
            self.fault.availability
        ));
        s.push_str(&format!(
            ", \"goodput_gflops\": {:.3}",
            self.goodput_gflops()
        ));
        s.push_str(&format!(
            ", \"deadline_misses\": {}",
            self.fault.deadline_misses
        ));
        s.push_str(&format!(
            ", \"outstanding_clamps\": {}",
            self.diagnostics.outstanding_clamps
        ));
        s.push_str(", \"tenants\": [");
        let tenants = self.machines.first().map_or(0, |m| m.serve.tenants.len());
        for t in 0..tenants {
            if t > 0 {
                s.push_str(", ");
            }
            let h = self.tenant_latency_hist(t);
            s.push_str(&format!(
                "{{\"name\": \"{}\", \"completed\": {}, \"latency_p50_ns\": {}, \
                 \"latency_p95_ns\": {}, \"latency_p99_ns\": {}}}",
                self.machines[0].serve.tenants[t].name,
                self.machines
                    .iter()
                    .map(|m| m.serve.tenants[t].completed)
                    .sum::<u64>(),
                h.p50(),
                h.p95(),
                h.p99(),
            ));
        }
        s.push(']');
        s.push_str(&format!(
            ", \"fingerprint\": \"{}\"",
            self.fingerprint_hex()
        ));
        s.push('}');
        s
    }
}

impl fmt::Display for ClusterReport {
    /// Human-readable fleet summary: headline counters, fleet latency
    /// percentiles, fault/elasticity outcome, router diagnostics, then
    /// one line per tenant with fleet-merged latency percentiles. Integer
    /// microseconds and fixed-precision floats only, so the dump is
    /// byte-stable across platforms.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "machines={} completed={} rejected={} makespan_us={:.3} gflops={:.3} fairness={:.6}",
            self.machines.len(),
            self.jobs_completed,
            self.jobs_rejected,
            self.makespan.as_us(),
            self.total_gflops(),
            self.fairness(),
        )?;
        writeln!(
            f,
            "latency_us mean={:.3} p50<={:.3} p95<={:.3} p99<={:.3}",
            self.mean_latency().as_us(),
            self.latency_p50().as_us(),
            self.latency_p95().as_us(),
            self.latency_p99().as_us(),
        )?;
        writeln!(
            f,
            "migrations={} splits={} failures={} replaced={} lost={} availability={:.6} \
             outstanding_clamps={}",
            self.migrations,
            self.splits,
            self.fault.failures,
            self.fault.jobs_replaced,
            self.fault.jobs_lost,
            self.fault.availability,
            self.diagnostics.outstanding_clamps,
        )?;
        writeln!(
            f,
            "interconnect bytes={} bytes_per_job={:.3} fingerprint={:016x}",
            self.interconnect_bytes,
            self.interconnect_bytes_per_job(),
            self.interconnect_fingerprint,
        )?;
        let tenants = self.machines.first().map_or(0, |m| m.serve.tenants.len());
        for t in 0..tenants {
            let h = self.tenant_latency_hist(t);
            let completed: u64 = self
                .machines
                .iter()
                .map(|m| m.serve.tenants[t].completed)
                .sum();
            writeln!(
                f,
                "tenant {:<12} completed={} latency_us p50<={:.3} p95<={:.3} p99<={:.3}",
                self.machines[0].serve.tenants[t].name,
                completed,
                SimDuration::from_ns(h.p50()).as_us(),
                SimDuration::from_ns(h.p95()).as_us(),
                SimDuration::from_ns(h.p99()).as_us(),
            )?;
        }
        write!(f, "fingerprint={}", self.fingerprint_hex())
    }
}
