//! Fleet-wide reports: per-machine serving outcomes, global job records,
//! interconnect traffic and the cluster fingerprint.

use maco_serve::ServeReport;
use maco_sim::{SimDuration, SimTime};

use crate::spec::SplitKind;

/// Re-export of the workspace-wide fingerprint fold (one implementation,
/// shared by every determinism gate).
pub use maco_sim::fold_fingerprint;

/// One machine's outcome over a cluster episode.
#[derive(Debug, Clone)]
pub struct MachineReport {
    /// Machine display name (from the spec).
    pub name: String,
    /// The machine's compute node count.
    pub nodes: usize,
    /// The machine-local serving report (leases, tenant stats, schedule
    /// fingerprint — everything a standalone [`maco_serve::Server`] run
    /// reports).
    pub serve: ServeReport,
}

impl MachineReport {
    /// Machine throughput in GFLOPS over the *fleet* makespan — the
    /// utilisation view: what share of the episode this machine spent
    /// doing useful work.
    pub fn gflops_over(&self, fleet_makespan: SimDuration) -> f64 {
        if fleet_makespan.is_zero() {
            0.0
        } else {
            self.serve.total_flops as f64 / fleet_makespan.as_ns()
        }
    }
}

/// The routing history of one submitted job.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Position in the arrival-sorted submitted stream.
    pub index: usize,
    /// Submitting tenant.
    pub tenant: usize,
    /// Original arrival time at the front-end router.
    pub arrival: SimTime,
    /// Arrival time on the target machine(s), after any migration or
    /// scatter delay on the interconnect.
    pub effective_arrival: SimTime,
    /// Participating machines, in part order (one entry unless split).
    pub machines: Vec<usize>,
    /// The data-parallel split applied, if any.
    pub split: Option<SplitKind>,
    /// Whether routing this job moved its tenant across machines (and
    /// paid the migration transfer).
    pub migrated: bool,
    /// Fleet-level completion time (all parts done, reductions included);
    /// `None` for jobs rejected at admission.
    pub finished_at: Option<SimTime>,
    /// Total GEMM flops.
    pub flops: u64,
}

impl JobRecord {
    /// End-to-end latency (router arrival → fleet completion), when the
    /// job completed.
    pub fn latency(&self) -> Option<SimDuration> {
        self.finished_at.map(|t| t.since(self.arrival))
    }
}

/// The outcome of one fleet episode.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Per-machine reports, in fleet index order.
    pub machines: Vec<MachineReport>,
    /// Per-job routing and completion records, in arrival order.
    pub jobs: Vec<JobRecord>,
    /// Jobs that ran to fleet-level completion (a split job counts once).
    pub jobs_completed: u64,
    /// Jobs refused at router admission.
    pub jobs_rejected: u64,
    /// Fleet makespan: start of time to the last fleet-level completion
    /// (reduction tails included).
    pub makespan: SimDuration,
    /// Total GEMM flops served across the fleet.
    pub total_flops: u64,
    /// Bytes moved across the inter-machine interconnect (migrations,
    /// scatters, reductions).
    pub interconnect_bytes: u64,
    /// Cumulative interconnect busy time (serialisation only).
    pub interconnect_busy: SimDuration,
    /// Cross-machine tenant migrations the router charged.
    pub migrations: u64,
    /// Jobs the router split data-parallel.
    pub splits: u64,
    /// Order-sensitive fold of every routing decision, completion and
    /// machine schedule fingerprint — byte-identical across same-seed
    /// runs.
    pub fingerprint: u64,
}

impl ClusterReport {
    /// Aggregate fleet throughput in GFLOPS over the makespan.
    pub fn total_gflops(&self) -> f64 {
        if self.makespan.is_zero() {
            0.0
        } else {
            self.total_flops as f64 / self.makespan.as_ns()
        }
    }

    /// Fleet-wide served flops per tenant (summed across machines).
    pub fn per_tenant_flops(&self) -> Vec<u64> {
        let tenants = self.machines.first().map_or(0, |m| m.serve.tenants.len());
        (0..tenants)
            .map(|t| self.machines.iter().map(|m| m.serve.tenants[t].flops).sum())
            .collect()
    }

    /// Jain's fairness index over fleet-wide weighted tenant service,
    /// across tenants that submitted work anywhere in the fleet.
    pub fn fairness(&self) -> f64 {
        let tenants = self.machines.first().map_or(0, |m| m.serve.tenants.len());
        let xs: Vec<f64> = (0..tenants)
            .filter(|&t| {
                self.machines
                    .iter()
                    .any(|m| m.serve.tenants[t].submitted > 0)
            })
            .map(|t| {
                let flops: u64 = self.machines.iter().map(|m| m.serve.tenants[t].flops).sum();
                let weight = self.machines[0].serve.tenants[t].weight;
                flops as f64 / weight as f64
            })
            .collect();
        if xs.is_empty() {
            return 1.0;
        }
        let sum: f64 = xs.iter().sum();
        let sq: f64 = xs.iter().map(|x| x * x).sum();
        if sq == 0.0 {
            1.0
        } else {
            (sum * sum) / (xs.len() as f64 * sq)
        }
    }

    /// Mean end-to-end latency over completed jobs.
    pub fn mean_latency(&self) -> SimDuration {
        let done: Vec<SimDuration> = self.jobs.iter().filter_map(JobRecord::latency).collect();
        if done.is_empty() {
            return SimDuration::ZERO;
        }
        let sum: u64 = done.iter().map(|d| d.as_fs()).sum();
        SimDuration::from_fs(sum / done.len() as u64)
    }

    /// The fingerprint as the 16-hex-digit string reports embed.
    pub fn fingerprint_hex(&self) -> String {
        format!("{:016x}", self.fingerprint)
    }
}
