//! Fleet-wide reports: per-machine serving outcomes, global job records,
//! interconnect traffic and the cluster fingerprint.

use maco_serve::ServeReport;
use maco_sim::{SimDuration, SimTime};

use crate::spec::SplitKind;

/// Re-export of the workspace-wide fingerprint fold (one implementation,
/// shared by every determinism gate).
pub use maco_sim::fold_fingerprint;

/// One machine's outcome over a cluster episode.
#[derive(Debug, Clone)]
pub struct MachineReport {
    /// Machine display name (from the spec).
    pub name: String,
    /// The machine's compute node count.
    pub nodes: usize,
    /// The machine-local serving report (leases, tenant stats, schedule
    /// fingerprint — everything a standalone [`maco_serve::Server`] run
    /// reports). For a machine that failed and recovered this is the
    /// merge of its incarnations' reports (sums and maxima; fingerprints
    /// folded in incarnation order, lease logs concatenated — lease job
    /// ids are incarnation-local).
    pub serve: ServeReport,
    /// Engine incarnations this machine ran (1 + completed fail-stops).
    pub incarnations: u32,
}

/// Merges the serving reports of one machine's successive incarnations (a
/// failed machine's engine is retired at each fail-stop and a fresh one
/// started for the recovery) into the single per-machine view the fleet
/// report exposes. With one incarnation this is the identity.
pub(crate) fn merge_serve_reports(reports: Vec<ServeReport>) -> ServeReport {
    let mut iter = reports.into_iter();
    let mut merged = iter.next().expect("at least one incarnation");
    for r in iter {
        debug_assert_eq!(merged.tenants.len(), r.tenants.len());
        for (a, b) in merged.tenants.iter_mut().zip(r.tenants) {
            a.submitted += b.submitted;
            a.completed += b.completed;
            a.rejected += b.rejected;
            a.flops += b.flops;
            a.latency_sum += b.latency_sum;
            a.latency_max = a.latency_max.max(b.latency_max);
            a.deadline_misses += b.deadline_misses;
            a.peak_mtq = a.peak_mtq.max(b.peak_mtq);
            a.peak_stq = a.peak_stq.max(b.peak_stq);
        }
        merged.jobs_completed += r.jobs_completed;
        merged.jobs_rejected += r.jobs_rejected;
        merged.makespan = merged.makespan.max(r.makespan);
        merged.total_flops += r.total_flops;
        merged.machine_peak_mtq = merged.machine_peak_mtq.max(r.machine_peak_mtq);
        merged.machine_peak_stq = merged.machine_peak_stq.max(r.machine_peak_stq);
        merged.leases.extend(r.leases);
        merged.fingerprint = fold_fingerprint(merged.fingerprint, r.fingerprint);
    }
    merged
}

impl MachineReport {
    /// Machine throughput in GFLOPS over the *fleet* makespan — the
    /// utilisation view: what share of the episode this machine spent
    /// doing useful work.
    pub fn gflops_over(&self, fleet_makespan: SimDuration) -> f64 {
        if fleet_makespan.is_zero() {
            0.0
        } else {
            self.serve.total_flops as f64 / fleet_makespan.as_ns()
        }
    }
}

/// The routing history of one submitted job.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Position in the arrival-sorted submitted stream.
    pub index: usize,
    /// Submitting tenant.
    pub tenant: usize,
    /// Original arrival time at the front-end router.
    pub arrival: SimTime,
    /// Arrival time on the target machine(s), after any migration or
    /// scatter delay on the interconnect.
    pub effective_arrival: SimTime,
    /// Participating machines, in part order (one entry unless split).
    pub machines: Vec<usize>,
    /// The data-parallel split applied, if any.
    pub split: Option<SplitKind>,
    /// Whether routing this job moved its tenant across machines (and
    /// paid the migration transfer).
    pub migrated: bool,
    /// Times this job (or one of its split parts) was evicted by a
    /// machine failure and re-placed on a surviving machine.
    pub requeues: u32,
    /// Fleet-level completion time (all parts done, reductions included);
    /// `None` for jobs rejected at admission.
    pub finished_at: Option<SimTime>,
    /// Total GEMM flops.
    pub flops: u64,
}

impl JobRecord {
    /// End-to-end latency (router arrival → fleet completion), when the
    /// job completed.
    pub fn latency(&self) -> Option<SimDuration> {
        self.finished_at.map(|t| t.since(self.arrival))
    }
}

/// Router-health diagnostics: counters that are always zero in a healthy
/// episode, surfaced so release builds cannot silently paper over
/// accounting corruption.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterDiagnostics {
    /// Times the outstanding-flops ledger clamped a checked-subtraction
    /// underflow. Debug builds panic at the same point; release builds
    /// clamp to zero *and count it here* so the desync is never silent —
    /// every test asserts this stays 0.
    pub outstanding_clamps: u64,
}

/// One autoscaler action on the active machine set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaleEvent {
    /// When the decision was taken (a routed arrival's instant).
    pub at: SimTime,
    /// True = activated a standby machine; false = drained one.
    pub grew: bool,
    /// Active machine count after the action.
    pub active_after: usize,
}

/// Failure/elasticity outcome of one fleet episode. With an empty
/// [`crate::spec::FaultSpec`] and no autoscaler every counter is zero,
/// `availability` is 1.0 and `fingerprint` is 0.
#[derive(Debug, Clone)]
pub struct FaultReport {
    /// Machine fail-stop events processed.
    pub failures: u64,
    /// Machine recoveries processed.
    pub recoveries: u64,
    /// Evicted jobs (or split parts) re-placed on surviving machines.
    pub jobs_replaced: u64,
    /// Interconnect bytes charged for re-placement state transfer
    /// (migration context + remaining weight bytes per evicted job).
    pub replaced_bytes: u64,
    /// Admitted jobs that finished nowhere — the fail-stop contract is
    /// that this is **always 0**: every evicted remainder is re-placed.
    pub jobs_lost: u64,
    /// Alive machine-time fraction over the episode makespan (1.0 = no
    /// downtime).
    pub availability: f64,
    /// Worst per-failure recovery latency: failure instant to the last
    /// evicted remainder's effective re-arrival (0 for failures that
    /// evicted nothing).
    pub recovery_latency_max: SimDuration,
    /// Mean per-failure recovery latency.
    pub recovery_latency_mean: SimDuration,
    /// Flops of jobs that completed within their deadline (jobs with no
    /// deadline always count) — the SLO-weighted portion of
    /// `total_flops`.
    pub goodput_flops: u64,
    /// Fleet-level deadline misses (router arrival → fleet completion,
    /// reduction tails included).
    pub deadline_misses: u64,
    /// Autoscaler actions, in decision order.
    pub scale_events: Vec<ScaleEvent>,
    /// Largest active machine set the autoscaler ran (fleet size when no
    /// autoscaler is configured).
    pub peak_active: usize,
    /// Order-sensitive fold of every fault event, eviction, re-placement
    /// and scaling action — the failure layer's own determinism gate,
    /// separate from the schedule fingerprint. 0 with no faults and no
    /// autoscaler.
    pub fingerprint: u64,
}

/// The outcome of one fleet episode.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Per-machine reports, in fleet index order.
    pub machines: Vec<MachineReport>,
    /// Per-job routing and completion records, in arrival order.
    pub jobs: Vec<JobRecord>,
    /// Jobs that ran to fleet-level completion (a split job counts once).
    pub jobs_completed: u64,
    /// Jobs refused at router admission.
    pub jobs_rejected: u64,
    /// Fleet makespan: start of time to the last fleet-level completion
    /// (reduction tails included).
    pub makespan: SimDuration,
    /// Total GEMM flops served across the fleet.
    pub total_flops: u64,
    /// Bytes moved across the inter-machine interconnect (migrations,
    /// scatters, reductions).
    pub interconnect_bytes: u64,
    /// Cumulative interconnect busy time (serialisation only).
    pub interconnect_busy: SimDuration,
    /// Cross-machine tenant migrations the router charged.
    pub migrations: u64,
    /// Jobs the router split data-parallel.
    pub splits: u64,
    /// Failure/elasticity metrics (all-zero and availability 1.0 for a
    /// healthy, non-elastic fleet).
    pub fault: FaultReport,
    /// Router-health diagnostics (always zero in a healthy episode).
    pub diagnostics: ClusterDiagnostics,
    /// Order-sensitive fold of every routing decision, completion and
    /// machine schedule fingerprint — byte-identical across same-seed
    /// runs.
    pub fingerprint: u64,
}

impl ClusterReport {
    /// Aggregate fleet throughput in GFLOPS over the makespan.
    pub fn total_gflops(&self) -> f64 {
        if self.makespan.is_zero() {
            0.0
        } else {
            self.total_flops as f64 / self.makespan.as_ns()
        }
    }

    /// Fleet-wide served flops per tenant (summed across machines).
    pub fn per_tenant_flops(&self) -> Vec<u64> {
        let tenants = self.machines.first().map_or(0, |m| m.serve.tenants.len());
        (0..tenants)
            .map(|t| self.machines.iter().map(|m| m.serve.tenants[t].flops).sum())
            .collect()
    }

    /// Jain's fairness index over fleet-wide weighted tenant service,
    /// across tenants that submitted work anywhere in the fleet.
    pub fn fairness(&self) -> f64 {
        let tenants = self.machines.first().map_or(0, |m| m.serve.tenants.len());
        let xs: Vec<f64> = (0..tenants)
            .filter(|&t| {
                self.machines
                    .iter()
                    .any(|m| m.serve.tenants[t].submitted > 0)
            })
            .map(|t| {
                let flops: u64 = self.machines.iter().map(|m| m.serve.tenants[t].flops).sum();
                let weight = self.machines[0].serve.tenants[t].weight;
                flops as f64 / weight as f64
            })
            .collect();
        if xs.is_empty() {
            return 1.0;
        }
        let sum: f64 = xs.iter().sum();
        let sq: f64 = xs.iter().map(|x| x * x).sum();
        if sq == 0.0 {
            1.0
        } else {
            (sum * sum) / (xs.len() as f64 * sq)
        }
    }

    /// Mean end-to-end latency over completed jobs.
    pub fn mean_latency(&self) -> SimDuration {
        let done: Vec<SimDuration> = self.jobs.iter().filter_map(JobRecord::latency).collect();
        if done.is_empty() {
            return SimDuration::ZERO;
        }
        let sum: u64 = done.iter().map(|d| d.as_fs()).sum();
        SimDuration::from_fs(sum / done.len() as u64)
    }

    /// SLO-weighted throughput in GFLOPS: deadline-respecting flops over
    /// the makespan.
    pub fn goodput_gflops(&self) -> f64 {
        if self.makespan.is_zero() {
            0.0
        } else {
            self.fault.goodput_flops as f64 / self.makespan.as_ns()
        }
    }

    /// The fingerprint as the 16-hex-digit string reports embed.
    pub fn fingerprint_hex(&self) -> String {
        format!("{:016x}", self.fingerprint)
    }
}
