//! Fleet declaration: machines, interconnect cost model, placement policy,
//! the data-parallel split rule, the deterministic fault schedule and the
//! elasticity (autoscaler) policy.

use maco_core::system::SystemConfig;
use maco_serve::ServeConfig;
use maco_sim::{SimDuration, SimTime, SplitMix64};

/// One machine of the fleet: an independently configured [`SystemConfig`]
/// (heterogeneous node counts and CCM bandwidths are allowed) plus its
/// serving-layer configuration.
#[derive(Debug, Clone)]
pub struct MachineSpec {
    /// Display name (used in reports).
    pub name: String,
    /// The machine's hardware configuration.
    pub system: SystemConfig,
    /// The machine's serving configuration (policy, queue bound, gangs).
    pub serve: ServeConfig,
}

impl MachineSpec {
    /// A machine named `name` with `nodes` compute nodes and every other
    /// knob at the paper default.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is outside `1..=16`.
    pub fn new(name: impl Into<String>, nodes: usize) -> Self {
        assert!((1..=16).contains(&nodes), "machines have 1..=16 nodes");
        MachineSpec {
            name: name.into(),
            system: SystemConfig {
                nodes,
                ..SystemConfig::default()
            },
            serve: ServeConfig::default(),
        }
    }

    /// A homogeneous fleet: `machines` machines (`m0..`) of `nodes_each`
    /// nodes.
    pub fn uniform(machines: usize, nodes_each: usize) -> Vec<MachineSpec> {
        (0..machines)
            .map(|i| MachineSpec::new(format!("m{i}"), nodes_each))
            .collect()
    }
}

/// The inter-machine interconnect: a shared latency + bandwidth resource
/// (one fabric, transfers queue behind each other) charged on cross-machine
/// tenant migration and on data-parallel GEMM scatters/reductions. Within a
/// machine the mesh/CCM/DRAM model applies; this model only prices traffic
/// that crosses machine boundaries.
#[derive(Debug, Clone)]
pub struct InterconnectSpec {
    /// Fixed per-transfer latency (link + switch traversal).
    pub latency: SimDuration,
    /// Shared fabric bandwidth in GB/s.
    pub gbps: f64,
    /// Fixed per-migration context payload in bytes (page tables, runtime
    /// state), charged on top of the migrating job's weight bytes.
    pub migration_bytes: u64,
}

impl Default for InterconnectSpec {
    /// A 200 Gb/s fabric with 2 µs latency and a 1 MiB migration context —
    /// datacenter-NIC territory, deliberately far slower than the on-chip
    /// mesh so machine affinity matters.
    fn default() -> Self {
        InterconnectSpec {
            latency: SimDuration::from_ns(2_000),
            gbps: 25.0,
            migration_bytes: 1 << 20,
        }
    }
}

/// The front-end router's placement policy: which machine a newly arrived
/// job is sent to. Every policy is a pure function of prior routing and
/// completion state, so placements are deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Machines in cyclic order, ignoring load (the baseline; it migrates
    /// tenants constantly and pays for it on the interconnect).
    RoundRobin,
    /// The machine with the least outstanding GEMM flops (routed minus
    /// completed), ties to the lowest index.
    LeastLoaded,
    /// Jobs follow their tenant's current home machine (initially
    /// `tenant % machines`), avoiding migration traffic — unless the home
    /// is overloaded, in which case the job spills to the least-loaded
    /// machine and the tenant migrates. `spill` is the overload factor:
    /// the home spills when its outstanding flops exceed `spill` times the
    /// fleet-average outstanding flops (integer cross-multiplied, so the
    /// comparison is exact).
    TenantAffinity {
        /// Overload factor triggering a spill (≥ 1; higher = stickier).
        spill: u32,
    },
    /// Communication-avoiding placement: machines are ranked along a
    /// generalized Hilbert space-filling curve over the fleet's
    /// near-square grid, a tenant's home is its curve position (following
    /// the weights after any migration, so a spilled tenant is not
    /// dragged back), overload spills to the curve-nearest machine with
    /// headroom, and split fan-out stays curve-compact anchored on the
    /// tenant's home. Minimises migration + scatter/all-reduce bytes;
    /// compare head-to-head via `maco_explore::placement_sweep`.
    SfcLocality,
}

impl Placement {
    /// The three classic policies at representative settings, in a stable
    /// order (benchmarks and tests sweep this; the fingerprints pinned
    /// against it predate [`Placement::SfcLocality`], which is swept
    /// separately by the placement experiment).
    pub const ALL: [Placement; 3] = [
        Placement::RoundRobin,
        Placement::LeastLoaded,
        Placement::TenantAffinity { spill: 2 },
    ];

    /// Display tag.
    pub fn name(self) -> &'static str {
        match self {
            Placement::RoundRobin => "round-robin",
            Placement::LeastLoaded => "least-loaded",
            Placement::TenantAffinity { .. } => "tenant-affinity",
            Placement::SfcLocality => "sfc-locality",
        }
    }
}

/// How a large GEMM⁺ layer is split data-parallel across machines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitKind {
    /// Split the reduction extent: every machine computes a partial
    /// product over one `k`-span and the partials are combined by a
    /// modeled all-reduce on the interconnect (charged at completion).
    /// The combine runs in span order at the working precision, so the
    /// result is bit-identical to the unsplit kernel
    /// (`maco_mmae::kernels::matmul_ksplit_into` proves this).
    KSplit,
    /// Split the output rows: machines own disjoint row slabs, no
    /// reduction is needed (only the operand scatter is charged).
    MSplit,
}

/// When and how the router splits a job across machines.
#[derive(Debug, Clone, Copy)]
pub struct SplitSpec {
    /// Only single-layer jobs of at least this many GEMM flops split;
    /// whole DNN streams (multi-layer jobs) always stay machine-affine.
    pub min_flops: u64,
    /// Upper bound on the number of participating machines.
    pub max_ways: usize,
    /// Split dimension.
    pub kind: SplitKind,
}

impl SplitSpec {
    /// Never split (the default): every job runs on exactly one machine.
    pub fn disabled() -> Self {
        SplitSpec {
            min_flops: u64::MAX,
            max_ways: 1,
            kind: SplitKind::KSplit,
        }
    }

    /// Split single-layer jobs of at least `min_flops` across up to
    /// `max_ways` machines.
    ///
    /// # Panics
    ///
    /// Panics if `max_ways` is zero — that is never a meaningful split
    /// rule (it used to silently disable splitting deep in the router's
    /// `want_ways` arithmetic; use [`SplitSpec::disabled`] to say
    /// "never split" explicitly).
    pub fn new(kind: SplitKind, min_flops: u64, max_ways: usize) -> Self {
        assert!(
            max_ways >= 1,
            "SplitSpec::new: max_ways must be at least 1 (use SplitSpec::disabled() to \
             turn splitting off)"
        );
        SplitSpec {
            min_flops,
            max_ways,
            kind,
        }
    }
}

impl Default for SplitSpec {
    fn default() -> Self {
        SplitSpec::disabled()
    }
}

/// One scheduled fail-stop machine failure on the global timeline.
///
/// At `at` the machine stops: its unprocessed in-flight and queued work is
/// evicted and re-placed on surviving machines (service already committed
/// to the timeline stands — see the failure-model notes in
/// `docs/ARCHITECTURE.md`). With `recover_at` set, the machine rejoins
/// the fleet cold (fresh engine, fresh system state) at that instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineFault {
    /// Fleet index of the failing machine.
    pub machine: usize,
    /// Fail-stop instant.
    pub at: SimTime,
    /// Optional recovery instant (strictly after `at`); `None` = the
    /// machine stays dead for the rest of the episode.
    pub recover_at: Option<SimTime>,
}

/// One interconnect brown-out window: transfers *charged* while the window
/// is active pay multiplied latency and divided bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradationWindow {
    /// Window start on the global timeline.
    pub from: SimTime,
    /// Window end (strictly after `from`).
    pub until: SimTime,
    /// Per-transfer latency multiplier (≥ 1; 1 = unchanged).
    pub latency_mult: u32,
    /// Bandwidth divisor (≥ 1; 1 = unchanged): serialisation takes this
    /// many times longer.
    pub bandwidth_div: u32,
}

/// A deterministic fault schedule: machine fail-stops (with optional
/// recovery) and interconnect degradation windows, all first-class events
/// on the fleet's global timeline. An empty schedule is a healthy fleet —
/// the episode is then bit-identical to a fault-free run.
#[derive(Debug, Clone, Default)]
pub struct FaultSpec {
    /// Machine failures, in any order (the episode sorts them by time,
    /// spec order breaking ties).
    pub machine_faults: Vec<MachineFault>,
    /// Interconnect degradation windows (overlapping windows compose
    /// multiplicatively).
    pub degradations: Vec<DegradationWindow>,
}

impl FaultSpec {
    /// The healthy fleet: no faults.
    pub fn none() -> Self {
        FaultSpec::default()
    }

    /// True when the schedule has no events at all.
    pub fn is_empty(&self) -> bool {
        self.machine_faults.is_empty() && self.degradations.is_empty()
    }

    /// Adds one machine failure.
    pub fn with_failure(
        mut self,
        machine: usize,
        at: SimTime,
        recover_at: Option<SimTime>,
    ) -> Self {
        self.machine_faults.push(MachineFault {
            machine,
            at,
            recover_at,
        });
        self
    }

    /// Adds one interconnect degradation window.
    pub fn with_degradation(mut self, window: DegradationWindow) -> Self {
        self.degradations.push(window);
        self
    }

    /// A seeded failure storm: kills `kills` *distinct* machines of a
    /// `machines`-machine fleet at uniformly drawn instants in
    /// `[from, until)`; each failed machine recovers `outage` later when
    /// given (`None` = no recovery). Deterministic per seed.
    ///
    /// # Panics
    ///
    /// Panics if `kills > machines` or the window is empty.
    pub fn storm(
        seed: u64,
        machines: usize,
        kills: usize,
        from: SimTime,
        until: SimTime,
        outage: Option<SimDuration>,
    ) -> Self {
        assert!(kills <= machines, "cannot kill more machines than exist");
        assert!(until > from, "empty failure window");
        let mut rng = SplitMix64::new(seed);
        // Partial Fisher–Yates over the machine indices: distinct victims.
        let mut order: Vec<usize> = (0..machines).collect();
        for i in 0..kills.min(machines.saturating_sub(1)) {
            let j = i + rng.next_below((machines - i) as u64) as usize;
            order.swap(i, j);
        }
        let span = until.since(from).as_fs();
        let machine_faults = order[..kills]
            .iter()
            .map(|&machine| {
                let at = from + SimDuration::from_fs(rng.next_below(span));
                MachineFault {
                    machine,
                    at,
                    recover_at: outage.map(|d| at + d),
                }
            })
            .collect();
        FaultSpec {
            machine_faults,
            degradations: Vec::new(),
        }
    }

    /// Validates the schedule against a `machines`-machine fleet.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range machine index, a recovery not strictly
    /// after its failure, an empty degradation window or a zero
    /// multiplier.
    pub fn validate(&self, machines: usize) {
        for f in &self.machine_faults {
            assert!(
                f.machine < machines,
                "fault names machine {} of a {machines}-machine fleet",
                f.machine
            );
            if let Some(r) = f.recover_at {
                assert!(r > f.at, "recovery must be strictly after the failure");
            }
        }
        for w in &self.degradations {
            assert!(w.until > w.from, "empty degradation window");
            assert!(
                w.latency_mult >= 1 && w.bandwidth_div >= 1,
                "degradation multipliers start at 1"
            );
        }
    }
}

/// The elasticity policy: grows/shrinks the *active* machine set against a
/// sliding-window arrival-rate and deadline-miss budget. Machines outside
/// the active set are warm standbys: they take no new placements (existing
/// work drains naturally) but count as healthy capacity the fleet can
/// activate. Decisions are evaluated when arrivals are routed, which keeps
/// the policy a pure function of previously processed events —
/// deterministic like everything else on the timeline.
#[derive(Debug, Clone, Copy)]
pub struct AutoscalerSpec {
    /// Sliding decision window over router arrivals and deadline misses.
    pub window: SimDuration,
    /// Grow when windowed arrivals exceed this many per active machine.
    pub grow_per_machine: u32,
    /// Shrink when windowed arrivals would stay below this many per
    /// active machine even with one machine fewer.
    pub shrink_per_machine: u32,
    /// Windowed deadline misses tolerated before growing regardless of
    /// arrival rate (the SLO budget).
    pub miss_budget: u32,
    /// Lower bound on the active set; also the initial active set
    /// (machines `0..min_machines`).
    pub min_machines: usize,
    /// Minimum time between scaling actions.
    pub cooldown: SimDuration,
}

impl AutoscalerSpec {
    /// A conservative default policy: 1 ms window, grow past 8 arrivals
    /// per machine or any deadline miss, shrink below 2, one machine
    /// minimum, 100 µs cooldown.
    pub fn conservative(min_machines: usize) -> Self {
        AutoscalerSpec {
            window: SimDuration::from_ns(1_000_000),
            grow_per_machine: 8,
            shrink_per_machine: 2,
            miss_budget: 0,
            min_machines,
            cooldown: SimDuration::from_ns(100_000),
        }
    }

    /// Validates the policy against a `machines`-machine fleet.
    ///
    /// # Panics
    ///
    /// Panics when the bounds are degenerate (zero minimum, minimum above
    /// the fleet size, or a zero window).
    pub fn validate(&self, machines: usize) {
        assert!(
            (1..=machines).contains(&self.min_machines),
            "min_machines must be in 1..={machines}"
        );
        assert!(!self.window.is_zero(), "autoscaler window must be positive");
        assert!(
            self.grow_per_machine >= 1,
            "grow_per_machine starts at 1 (0 would grow on every arrival)"
        );
    }
}

/// A fleet declaration: the machines, the interconnect between them, the
/// placement policy and the split rule.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// The machines, in fleet index order.
    pub machines: Vec<MachineSpec>,
    /// The inter-machine interconnect cost model.
    pub interconnect: InterconnectSpec,
    /// The front-end placement policy.
    pub placement: Placement,
    /// The data-parallel split rule.
    pub split: SplitSpec,
    /// The deterministic fault schedule (empty = healthy fleet; the
    /// episode is then bit-identical to a fault-free run).
    pub faults: FaultSpec,
    /// The elasticity policy (`None` = the whole fleet is always active).
    pub autoscaler: Option<AutoscalerSpec>,
}

impl ClusterSpec {
    /// A homogeneous fleet under [`Placement::LeastLoaded`] with splits
    /// disabled.
    ///
    /// # Panics
    ///
    /// Panics if `machines` is zero or a machine's node count is invalid.
    pub fn uniform(machines: usize, nodes_each: usize) -> Self {
        assert!(machines >= 1, "need at least one machine");
        ClusterSpec {
            machines: MachineSpec::uniform(machines, nodes_each),
            interconnect: InterconnectSpec::default(),
            placement: Placement::LeastLoaded,
            split: SplitSpec::disabled(),
            faults: FaultSpec::none(),
            autoscaler: None,
        }
    }

    /// The scale-out benchmark fleet (the `cluster_throughput` scenario in
    /// `perf_baseline`): `machines`×`nodes_each` machines whose uncore is
    /// bandwidth-constrained — 4 GB/s per CCM slice, below the Fig. 7
    /// knee, the design point where 16 co-located nodes starve their
    /// shared slices while 4-node machines keep theirs to themselves —
    /// under least-loaded placement with a 1-GFLOP k-split. At this point
    /// scale-out honestly beats scale-up at equal total node count: the
    /// fleet replicates the uncore per chip, and heavy single-layer jobs
    /// fan out across machines instead of queueing on one.
    pub fn bandwidth_constrained(machines: usize, nodes_each: usize) -> Self {
        let mut spec = ClusterSpec::uniform(machines, nodes_each)
            .with_placement(Placement::LeastLoaded)
            .with_split(SplitSpec::new(SplitKind::KSplit, 1_000_000_000, machines));
        for m in &mut spec.machines {
            m.system.ccm_gbps = 4.0;
        }
        spec
    }

    /// The high-request-rate streaming fleet (the `serve_throughput_100k`
    /// perf scenario): `machines`×`nodes_each` machines at the paper
    /// default hardware, sticky tenant-affinity placement (no spill in a
    /// balanced stream, so no interconnect traffic serialises 10⁵
    /// arrivals) and splits disabled. Every machine's admission queue is
    /// sized to `backlog` — the episode's request count — so the
    /// pre-flight capacity check admits the whole trace.
    ///
    /// # Panics
    ///
    /// Panics if `backlog` is zero — a zero queue capacity is never a
    /// meaningful streaming fleet (it used to be silently clamped to 1,
    /// which then surfaced as a confusing pre-flight capacity panic on
    /// the first multi-request trace).
    pub fn streaming(machines: usize, nodes_each: usize, backlog: usize) -> Self {
        assert!(
            backlog >= 1,
            "ClusterSpec::streaming: backlog must be at least 1 (size it to the \
             episode's request count)"
        );
        let mut spec = ClusterSpec::uniform(machines, nodes_each)
            .with_placement(Placement::TenantAffinity { spill: 1_000 });
        for m in &mut spec.machines {
            m.serve.queue_capacity = backlog;
        }
        spec
    }

    /// Sets the placement policy.
    pub fn with_placement(mut self, placement: Placement) -> Self {
        self.placement = placement;
        self
    }

    /// Sets the split rule.
    pub fn with_split(mut self, split: SplitSpec) -> Self {
        self.split = split;
        self
    }

    /// Sets the fault schedule.
    pub fn with_faults(mut self, faults: FaultSpec) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the elasticity policy.
    pub fn with_autoscaler(mut self, autoscaler: AutoscalerSpec) -> Self {
        self.autoscaler = Some(autoscaler);
        self
    }

    /// Total compute nodes across the fleet.
    pub fn total_nodes(&self) -> usize {
        self.machines.iter().map(|m| m.system.nodes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_fleet_shapes() {
        let spec = ClusterSpec::uniform(4, 4);
        assert_eq!(spec.machines.len(), 4);
        assert_eq!(spec.total_nodes(), 16);
        assert_eq!(spec.machines[2].name, "m2");
        assert_eq!(spec.machines[2].system.nodes, 4);
    }

    #[test]
    fn placement_tags_are_stable() {
        let names: Vec<&str> = Placement::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            vec!["round-robin", "least-loaded", "tenant-affinity"]
        );
    }

    #[test]
    #[should_panic(expected = "1..=16")]
    fn oversized_machines_are_rejected() {
        let _ = MachineSpec::new("big", 17);
    }

    /// Regression: `max_ways = 0` used to be accepted and then silently
    /// disabled splitting inside the router's `want_ways` arithmetic.
    #[test]
    #[should_panic(expected = "max_ways must be at least 1")]
    fn zero_max_ways_rejected_at_construction() {
        let _ = SplitSpec::new(SplitKind::KSplit, 1, 0);
    }

    /// Regression: `backlog = 0` used to be silently clamped to 1, which
    /// surfaced later as a confusing pre-flight capacity panic.
    #[test]
    #[should_panic(expected = "backlog must be at least 1")]
    fn zero_streaming_backlog_rejected_at_construction() {
        let _ = ClusterSpec::streaming(2, 4, 0);
    }

    #[test]
    fn storm_is_seed_deterministic_with_distinct_victims() {
        let from = SimTime::ZERO + SimDuration::from_ns(100);
        let until = SimTime::ZERO + SimDuration::from_ns(5_000);
        let a = FaultSpec::storm(9, 8, 4, from, until, Some(SimDuration::from_ns(700)));
        let b = FaultSpec::storm(9, 8, 4, from, until, Some(SimDuration::from_ns(700)));
        assert_eq!(a.machine_faults, b.machine_faults);
        assert_eq!(a.machine_faults.len(), 4);
        let mut victims: Vec<usize> = a.machine_faults.iter().map(|f| f.machine).collect();
        victims.sort_unstable();
        victims.dedup();
        assert_eq!(victims.len(), 4, "victims must be distinct");
        for f in &a.machine_faults {
            assert!(f.at >= from && f.at < until);
            assert_eq!(f.recover_at, Some(f.at + SimDuration::from_ns(700)));
        }
        a.validate(8);
    }

    #[test]
    #[should_panic(expected = "strictly after the failure")]
    fn recovery_before_failure_rejected() {
        FaultSpec::none()
            .with_failure(
                0,
                SimTime::ZERO + SimDuration::from_ns(10),
                Some(SimTime::ZERO),
            )
            .validate(1);
    }

    #[test]
    #[should_panic(expected = "min_machines must be in")]
    fn autoscaler_zero_minimum_rejected() {
        AutoscalerSpec::conservative(0).validate(4);
    }
}
