//! Fleet declaration: machines, interconnect cost model, placement policy
//! and the data-parallel split rule.

use maco_core::system::SystemConfig;
use maco_serve::ServeConfig;
use maco_sim::SimDuration;

/// One machine of the fleet: an independently configured [`SystemConfig`]
/// (heterogeneous node counts and CCM bandwidths are allowed) plus its
/// serving-layer configuration.
#[derive(Debug, Clone)]
pub struct MachineSpec {
    /// Display name (used in reports).
    pub name: String,
    /// The machine's hardware configuration.
    pub system: SystemConfig,
    /// The machine's serving configuration (policy, queue bound, gangs).
    pub serve: ServeConfig,
}

impl MachineSpec {
    /// A machine named `name` with `nodes` compute nodes and every other
    /// knob at the paper default.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is outside `1..=16`.
    pub fn new(name: impl Into<String>, nodes: usize) -> Self {
        assert!((1..=16).contains(&nodes), "machines have 1..=16 nodes");
        MachineSpec {
            name: name.into(),
            system: SystemConfig {
                nodes,
                ..SystemConfig::default()
            },
            serve: ServeConfig::default(),
        }
    }

    /// A homogeneous fleet: `machines` machines (`m0..`) of `nodes_each`
    /// nodes.
    pub fn uniform(machines: usize, nodes_each: usize) -> Vec<MachineSpec> {
        (0..machines)
            .map(|i| MachineSpec::new(format!("m{i}"), nodes_each))
            .collect()
    }
}

/// The inter-machine interconnect: a shared latency + bandwidth resource
/// (one fabric, transfers queue behind each other) charged on cross-machine
/// tenant migration and on data-parallel GEMM scatters/reductions. Within a
/// machine the mesh/CCM/DRAM model applies; this model only prices traffic
/// that crosses machine boundaries.
#[derive(Debug, Clone)]
pub struct InterconnectSpec {
    /// Fixed per-transfer latency (link + switch traversal).
    pub latency: SimDuration,
    /// Shared fabric bandwidth in GB/s.
    pub gbps: f64,
    /// Fixed per-migration context payload in bytes (page tables, runtime
    /// state), charged on top of the migrating job's weight bytes.
    pub migration_bytes: u64,
}

impl Default for InterconnectSpec {
    /// A 200 Gb/s fabric with 2 µs latency and a 1 MiB migration context —
    /// datacenter-NIC territory, deliberately far slower than the on-chip
    /// mesh so machine affinity matters.
    fn default() -> Self {
        InterconnectSpec {
            latency: SimDuration::from_ns(2_000),
            gbps: 25.0,
            migration_bytes: 1 << 20,
        }
    }
}

/// The front-end router's placement policy: which machine a newly arrived
/// job is sent to. Every policy is a pure function of prior routing and
/// completion state, so placements are deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Machines in cyclic order, ignoring load (the baseline; it migrates
    /// tenants constantly and pays for it on the interconnect).
    RoundRobin,
    /// The machine with the least outstanding GEMM flops (routed minus
    /// completed), ties to the lowest index.
    LeastLoaded,
    /// Jobs follow their tenant's current home machine (initially
    /// `tenant % machines`), avoiding migration traffic — unless the home
    /// is overloaded, in which case the job spills to the least-loaded
    /// machine and the tenant migrates. `spill` is the overload factor:
    /// the home spills when its outstanding flops exceed `spill` times the
    /// fleet-average outstanding flops (integer cross-multiplied, so the
    /// comparison is exact).
    TenantAffinity {
        /// Overload factor triggering a spill (≥ 1; higher = stickier).
        spill: u32,
    },
}

impl Placement {
    /// The three policies at representative settings, in a stable order
    /// (benchmarks and tests sweep this).
    pub const ALL: [Placement; 3] = [
        Placement::RoundRobin,
        Placement::LeastLoaded,
        Placement::TenantAffinity { spill: 2 },
    ];

    /// Display tag.
    pub fn name(self) -> &'static str {
        match self {
            Placement::RoundRobin => "round-robin",
            Placement::LeastLoaded => "least-loaded",
            Placement::TenantAffinity { .. } => "tenant-affinity",
        }
    }
}

/// How a large GEMM⁺ layer is split data-parallel across machines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitKind {
    /// Split the reduction extent: every machine computes a partial
    /// product over one `k`-span and the partials are combined by a
    /// modeled all-reduce on the interconnect (charged at completion).
    /// The combine runs in span order at the working precision, so the
    /// result is bit-identical to the unsplit kernel
    /// (`maco_mmae::kernels::matmul_ksplit_into` proves this).
    KSplit,
    /// Split the output rows: machines own disjoint row slabs, no
    /// reduction is needed (only the operand scatter is charged).
    MSplit,
}

/// When and how the router splits a job across machines.
#[derive(Debug, Clone, Copy)]
pub struct SplitSpec {
    /// Only single-layer jobs of at least this many GEMM flops split;
    /// whole DNN streams (multi-layer jobs) always stay machine-affine.
    pub min_flops: u64,
    /// Upper bound on the number of participating machines.
    pub max_ways: usize,
    /// Split dimension.
    pub kind: SplitKind,
}

impl SplitSpec {
    /// Never split (the default): every job runs on exactly one machine.
    pub fn disabled() -> Self {
        SplitSpec {
            min_flops: u64::MAX,
            max_ways: 1,
            kind: SplitKind::KSplit,
        }
    }

    /// Split single-layer jobs of at least `min_flops` across up to
    /// `max_ways` machines.
    pub fn new(kind: SplitKind, min_flops: u64, max_ways: usize) -> Self {
        SplitSpec {
            min_flops,
            max_ways,
            kind,
        }
    }
}

impl Default for SplitSpec {
    fn default() -> Self {
        SplitSpec::disabled()
    }
}

/// A fleet declaration: the machines, the interconnect between them, the
/// placement policy and the split rule.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// The machines, in fleet index order.
    pub machines: Vec<MachineSpec>,
    /// The inter-machine interconnect cost model.
    pub interconnect: InterconnectSpec,
    /// The front-end placement policy.
    pub placement: Placement,
    /// The data-parallel split rule.
    pub split: SplitSpec,
}

impl ClusterSpec {
    /// A homogeneous fleet under [`Placement::LeastLoaded`] with splits
    /// disabled.
    ///
    /// # Panics
    ///
    /// Panics if `machines` is zero or a machine's node count is invalid.
    pub fn uniform(machines: usize, nodes_each: usize) -> Self {
        assert!(machines >= 1, "need at least one machine");
        ClusterSpec {
            machines: MachineSpec::uniform(machines, nodes_each),
            interconnect: InterconnectSpec::default(),
            placement: Placement::LeastLoaded,
            split: SplitSpec::disabled(),
        }
    }

    /// The scale-out benchmark fleet (the `cluster_throughput` scenario in
    /// `perf_baseline`): `machines`×`nodes_each` machines whose uncore is
    /// bandwidth-constrained — 4 GB/s per CCM slice, below the Fig. 7
    /// knee, the design point where 16 co-located nodes starve their
    /// shared slices while 4-node machines keep theirs to themselves —
    /// under least-loaded placement with a 1-GFLOP k-split. At this point
    /// scale-out honestly beats scale-up at equal total node count: the
    /// fleet replicates the uncore per chip, and heavy single-layer jobs
    /// fan out across machines instead of queueing on one.
    pub fn bandwidth_constrained(machines: usize, nodes_each: usize) -> Self {
        let mut spec = ClusterSpec::uniform(machines, nodes_each)
            .with_placement(Placement::LeastLoaded)
            .with_split(SplitSpec::new(SplitKind::KSplit, 1_000_000_000, machines));
        for m in &mut spec.machines {
            m.system.ccm_gbps = 4.0;
        }
        spec
    }

    /// The high-request-rate streaming fleet (the `serve_throughput_100k`
    /// perf scenario): `machines`×`nodes_each` machines at the paper
    /// default hardware, sticky tenant-affinity placement (no spill in a
    /// balanced stream, so no interconnect traffic serialises 10⁵
    /// arrivals) and splits disabled. Every machine's admission queue is
    /// sized to `backlog` — the episode's request count — so the
    /// pre-flight capacity check admits the whole trace.
    pub fn streaming(machines: usize, nodes_each: usize, backlog: usize) -> Self {
        let mut spec = ClusterSpec::uniform(machines, nodes_each)
            .with_placement(Placement::TenantAffinity { spill: 1_000 });
        for m in &mut spec.machines {
            m.serve.queue_capacity = backlog.max(1);
        }
        spec
    }

    /// Sets the placement policy.
    pub fn with_placement(mut self, placement: Placement) -> Self {
        self.placement = placement;
        self
    }

    /// Sets the split rule.
    pub fn with_split(mut self, split: SplitSpec) -> Self {
        self.split = split;
        self
    }

    /// Total compute nodes across the fleet.
    pub fn total_nodes(&self) -> usize {
        self.machines.iter().map(|m| m.system.nodes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_fleet_shapes() {
        let spec = ClusterSpec::uniform(4, 4);
        assert_eq!(spec.machines.len(), 4);
        assert_eq!(spec.total_nodes(), 16);
        assert_eq!(spec.machines[2].name, "m2");
        assert_eq!(spec.machines[2].system.nodes, 4);
    }

    #[test]
    fn placement_tags_are_stable() {
        let names: Vec<&str> = Placement::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            vec!["round-robin", "least-loaded", "tenant-affinity"]
        );
    }

    #[test]
    #[should_panic(expected = "1..=16")]
    fn oversized_machines_are_rejected() {
        let _ = MachineSpec::new("big", 17);
    }
}
