//! Offline stand-in for the subset of the `criterion` crate used by
//! `crates/bench/benches/substrate.rs`.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides [`Criterion::bench_function`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. It is a measurement
//! harness, not a statistics engine: each benchmark is warmed up, then timed
//! over enough iterations to fill a short measurement window, and the mean
//! time per iteration is printed. `CRITERION_QUICK=1` (or running under
//! `cargo test`, which passes `--test`) trims the window so suites stay fast.

use std::hint;
use std::time::{Duration, Instant};

/// Prevents the optimiser from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Per-benchmark timing loop handed to the closure given to
/// [`Criterion::bench_function`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over this bencher's iteration budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// The benchmark driver.
pub struct Criterion {
    measurement_window: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let quick = std::env::var_os("CRITERION_QUICK").is_some()
            || std::env::args().any(|a| a == "--test");
        Criterion {
            measurement_window: if quick {
                Duration::from_millis(1)
            } else {
                Duration::from_millis(200)
            },
        }
    }
}

impl Criterion {
    /// Runs one named benchmark: calibrates an iteration count that fills
    /// the measurement window, runs it, and prints the mean per-iteration
    /// time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        // Calibration pass: find how many iterations fit the window.
        let mut iters = 1u64;
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.elapsed >= self.measurement_window || iters >= 1 << 30 {
                break;
            }
            let per_iter = b.elapsed.as_secs_f64() / iters as f64;
            let want = if per_iter > 0.0 {
                (self.measurement_window.as_secs_f64() / per_iter).ceil() as u64
            } else {
                iters * 100
            };
            iters = want.clamp(iters + 1, iters.saturating_mul(100));
        }
        // Measurement pass.
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter_ns = b.elapsed.as_nanos() as f64 / iters as f64;
        println!("{name:<40} {per_iter_ns:>12.1} ns/iter ({iters} iters)");
        self
    }

    /// Final-report hook; a no-op in this stand-in.
    pub fn final_summary(&mut self) {}
}

/// Groups benchmark functions under one callable, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running each group, mirroring criterion's macro of the same
/// name.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        std::env::set_var("CRITERION_QUICK", "1");
        let mut c = Criterion::default();
        let mut ran = 0u64;
        c.bench_function("self_test", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn black_box_is_identity() {
        assert_eq!(black_box(42), 42);
        assert_eq!(black_box("x"), "x");
    }
}
