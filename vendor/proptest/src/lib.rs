//! Offline stand-in for the subset of the `proptest` crate used by this
//! workspace.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements just enough of proptest's surface for the property suites in
//! `tests/proptest_invariants.rs` (and any future ones written against the
//! same subset):
//!
//! * the [`proptest!`] macro with `arg in strategy` bindings,
//! * range strategies over the primitive integer types,
//! * tuple strategies (arity 2–6) and [`collection::vec`],
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`].
//!
//! Semantics differ from real proptest in two deliberate ways: sampling is
//! driven by a fixed-seed SplitMix64 stream derived from the test name (fully
//! deterministic, no persistence files), and there is no shrinking — a
//! failing case reports the iteration index instead. The case count defaults
//! to 128 and can be overridden with the `PROPTEST_CASES` environment
//! variable.

/// Deterministic SplitMix64 generator driving all strategy sampling.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be positive.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Derives the per-test RNG from the test's name, so every property test has
/// an independent but reproducible stream.
pub fn rng_for(test_name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    TestRng::new(h)
}

/// Number of cases each property runs (`PROPTEST_CASES` overrides).
pub fn num_cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(128)
}

pub mod strategy {
    //! The [`Strategy`] trait and its implementations for ranges and tuples.

    use super::TestRng;
    use std::ops::Range;

    /// A source of random values of one type.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;
        /// Draws one value from `rng`.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty or inverted range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.next_below(span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
}

pub mod collection {
    //! Collection strategies (`vec`).

    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::Range;

    /// Strategy producing `Vec`s of an element strategy's values with a
    /// length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Builds a [`VecStrategy`].
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            assert!(span > 0, "empty length range");
            let n = self.len.start + rng.next_below(span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Glob-importable surface mirroring `proptest::prelude`.
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares property tests. Each function body runs [`num_cases`] times with
/// fresh values drawn from the named strategies; assertion macros panic with
/// the failing iteration index (no shrinking).
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let mut __rng = $crate::rng_for(stringify!($name));
                for __case in 0..$crate::num_cases() {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                    let __guard = $crate::CaseGuard::new(__case);
                    $body
                    drop(__guard);
                }
            }
        )*
    };
}

/// Prints the failing case index if a property body panics.
pub struct CaseGuard {
    case: u64,
    armed: bool,
}

impl CaseGuard {
    /// Arms a guard for case `case`.
    pub fn new(case: u64) -> Self {
        CaseGuard { case, armed: true }
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if self.armed && std::thread::panicking() {
            eprintln!("proptest (vendored): property failed at case {}", self.case);
        }
    }
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

#[cfg(test)]
mod tests {
    use crate::strategy::Strategy;

    #[test]
    fn range_sampling_stays_in_bounds() {
        let mut rng = crate::rng_for("range_sampling");
        for _ in 0..10_000 {
            let v = (5u64..17).sample(&mut rng);
            assert!((5..17).contains(&v));
            let s = (-3i32..4).sample(&mut rng);
            assert!((-3..4).contains(&s));
        }
    }

    #[test]
    fn vec_strategy_respects_length_range() {
        let mut rng = crate::rng_for("vec_strategy");
        let strat = crate::collection::vec((0u8..3, 0usize..4), 1..50);
        for _ in 0..1_000 {
            let v = strat.sample(&mut rng);
            assert!((1..50).contains(&v.len()));
            assert!(v.iter().all(|&(a, b)| a < 3 && b < 4));
        }
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_range_panics_instead_of_wrapping() {
        let mut rng = crate::rng_for("inverted");
        #[allow(clippy::reversed_empty_ranges)]
        let _ = (10u64..5).sample(&mut rng);
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::rng_for("same");
        let mut b = crate::rng_for("same");
        let mut c = crate::rng_for("other");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        /// The macro itself: bindings, multiple args, assertions.
        #[test]
        fn macro_smoke(x in 1u64..100, y in 0u8..4) {
            prop_assert!((1..100).contains(&x));
            prop_assert_ne!(x, 0);
            prop_assert_eq!(y as u64 + x, x + y as u64);
        }
    }
}
