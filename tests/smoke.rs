//! Fast end-to-end smoke test: a small GEMM through the full builder →
//! system → report path at every node count from 1 to 4. Runs in well
//! under a second, giving a quick signal before the heavy Fig. 6/7
//! integration suites.

use maco::core::runner::Maco;
use maco::isa::Precision;

#[test]
fn builder_gemm_end_to_end_at_n128_for_1_to_4_nodes() {
    for nodes in 1..=4 {
        let mut machine = Maco::builder().nodes(nodes).build();
        let report = machine
            .gemm(128, 128, 128, Precision::Fp32)
            .unwrap_or_else(|e| panic!("{nodes}-node GEMM faulted: {e:?}"));
        assert_eq!(report.nodes.len(), nodes, "one report per node");
        assert!(
            report.total_gflops() > 0.0,
            "{nodes} nodes: zero throughput"
        );
        let eff = report.avg_efficiency();
        assert!(
            eff > 0.0 && eff <= 1.0,
            "{nodes} nodes: efficiency {eff} outside (0, 1]"
        );
        assert!(!report.makespan.is_zero(), "{nodes} nodes: zero makespan");
    }
}

#[test]
fn parallel_gemm_smoke_at_n128() {
    // Fig. 7 semantics (same problem on every node) through the facade.
    let mut machine = Maco::builder().nodes(4).build();
    let report = machine
        .parallel_gemm(128, 128, 128, Precision::Fp64)
        .expect("parallel GEMM maps");
    assert_eq!(report.nodes.len(), 4);
    assert!(report.avg_efficiency() > 0.0);
}
