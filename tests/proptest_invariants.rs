//! Property-based tests over the core invariants of the reproduction.

use proptest::prelude::*;

use maco::isa::mtq::MasterTaskQueue;
use maco::isa::params::GemmParams;
use maco::isa::{Asid, ExceptionType, Precision};
use maco::mem::directory::Directory;
use maco::mmae::config::TilingConfig;
use maco::mmae::systolic::{reference_gemm, SystolicArray};
use maco::mmae::tiling::{block_passes, tiles_in_pass};
use maco::mmae::Mmae;
use maco::noc::routing::xy_route;
use maco::noc::sfc::TileOrder;
use maco::noc::topology::{MeshShape, NodeId};
use maco::vm::matlb::TileAccessPattern;
use maco::vm::VirtAddr;

proptest! {
    /// Every output element of a GEMM is covered exactly once per
    /// reduction pass, for arbitrary shapes and tilings.
    #[test]
    fn tiling_covers_output_exactly_once(
        m in 1u64..300,
        n in 1u64..300,
        k in 1u64..200,
        tr in 1u64..4,
        tc in 1u64..4,
    ) {
        let tiling = TilingConfig {
            tr: tr * 64,
            tc: tc * 64,
            tk: 128,
            ttr: 32,
            ttc: 32,
            ttk: 32,
        };
        let mut covered = vec![0u32; (m * n) as usize];
        for pass in block_passes(m, n, k, &tiling) {
            if !pass.first_k {
                continue;
            }
            for tile in tiles_in_pass(&pass, &tiling) {
                for r in tile.row0..tile.row0 + tile.rows {
                    for c in tile.col0..tile.col0 + tile.cols {
                        covered[(r * n + c) as usize] += 1;
                    }
                }
            }
        }
        prop_assert!(covered.iter().all(|&x| x == 1));
    }

    /// The mATLB's predicted page sequence equals brute-force enumeration
    /// of every byte the pattern touches.
    #[test]
    fn matlb_prediction_is_exact(
        base in 0u64..0x4000,
        rows in 1u64..40,
        row_words in 1u64..128,
        extra_stride in 0u64..2048,
    ) {
        let row_bytes = row_words * 8;
        let pattern = TileAccessPattern::new(
            VirtAddr::new(base),
            rows,
            row_bytes,
            row_bytes + extra_stride,
        );
        let predicted: Vec<u64> =
            pattern.predicted_pages().map(|p| p.page_number()).collect();
        // Brute force with consecutive dedup.
        let mut brute = Vec::new();
        for r in 0..rows {
            let start = base + r * (row_bytes + extra_stride);
            for b in start..start + row_bytes {
                let pg = b >> 12;
                if brute.last() != Some(&pg) {
                    brute.push(pg);
                }
            }
        }
        prop_assert_eq!(predicted, brute);
    }

    /// X-Y routes are minimal and stay inside the mesh for every pair.
    #[test]
    fn xy_routes_minimal(sx in 0u8..4, sy in 0u8..4, dx in 0u8..4, dy in 0u8..4) {
        let mesh = MeshShape::new(4, 4);
        let src = NodeId::new(sx, sy);
        let dst = NodeId::new(dx, dy);
        let path = xy_route(mesh, src, dst);
        prop_assert_eq!(path.len() as u32, src.manhattan(dst) + 1);
        prop_assert!(path.iter().all(|n| mesh.contains(*n)));
    }

    /// The MOESI directory never reaches an incompatible sharer state
    /// under arbitrary operation sequences.
    #[test]
    fn directory_invariants_hold(ops in proptest::collection::vec((0u8..3, 0usize..4, 0u64..16), 1..200)) {
        let mut dir = Directory::new(4);
        for (op, node, line) in ops {
            match op {
                0 => { dir.read_shared(node, line).unwrap(); }
                1 => { dir.read_exclusive(node, line).unwrap(); }
                _ => { dir.evict(node, line).unwrap(); }
            }
            prop_assert!(dir.check_invariants().is_ok());
        }
    }

    /// MTQ entries are never leaked or double-allocated under arbitrary
    /// interleavings of the Fig. 3 operations.
    #[test]
    fn mtq_never_leaks(ops in proptest::collection::vec((0u8..5, 0u8..4, 0u16..3), 1..300)) {
        let mut mtq = MasterTaskQueue::new(4);
        for (op, idx, asid_raw) in ops {
            let maid = maco::isa::mtq::Maid::new(idx);
            let asid = Asid::new(asid_raw);
            match op {
                0 => { let _ = mtq.allocate(asid); }
                1 => { let _ = mtq.complete(maid); }
                2 => { let _ = mtq.raise_exception(maid, ExceptionType::BusError); }
                3 => { let _ = mtq.query_release(maid, asid); }
                _ => { let _ = mtq.clear(maid); }
            }
            prop_assert!(mtq.in_use() <= mtq.capacity());
            // Allocation succeeds iff a free entry exists.
            let free = mtq.capacity() - mtq.in_use();
            let probe = mtq.allocate(Asid::new(999));
            if free > 0 {
                prop_assert!(probe.is_ok());
                mtq.clear(probe.unwrap()).unwrap();
            } else {
                prop_assert!(probe.is_err());
            }
        }
    }

    /// Tiled functional GEMM equals the reference for arbitrary small
    /// shapes (FP64).
    #[test]
    fn tiled_gemm_matches_reference(
        m in 1usize..48,
        n in 1usize..48,
        k in 1usize..48,
        seed in 0u64..1000,
    ) {
        let cfg = maco::mmae::MmaeConfig {
            tiling: TilingConfig { tr: 32, tc: 32, tk: 32, ttr: 16, ttc: 16, ttk: 16 },
            ..Default::default()
        };
        let engine = Mmae::new(cfg);
        let mut rng = maco::sim::SplitMix64::new(seed);
        let a: Vec<f64> = (0..m * k).map(|_| rng.next_signed_unit()).collect();
        let b: Vec<f64> = (0..k * n).map(|_| rng.next_signed_unit()).collect();
        let c: Vec<f64> = (0..m * n).map(|_| rng.next_signed_unit()).collect();
        let y = engine.gemm_functional(&a, &b, &c, m, n, k, Precision::Fp64);
        let r = reference_gemm(&a, &b, &c, m, n, k);
        for (yi, ri) in y.iter().zip(&r) {
            prop_assert!((yi - ri).abs() < 1e-9);
        }
    }

    /// GEMM parameter blocks round-trip through the six-register image.
    #[test]
    fn gemm_params_roundtrip(
        m in 1u64..10_000,
        n in 1u64..10_000,
        k in 1u64..10_000,
        a in 0u64..u32::MAX as u64,
    ) {
        let p = GemmParams::new(a, a + 1, a + 2, a + 3, m, n, k, Precision::Fp32).unwrap();
        prop_assert_eq!(GemmParams::unpack(&p.pack()).unwrap(), p);
    }

    /// The systolic cycle model never beats the ideal MAC bound.
    #[test]
    fn sa_cycles_at_least_ideal(
        m in 1u64..256,
        n in 1u64..256,
        k in 1u64..256,
    ) {
        let sa = SystolicArray::new(4, 4);
        for p in [Precision::Fp64, Precision::Fp32, Precision::Fp16] {
            prop_assert!(sa.tile_cycles(m, n, k, p) >= sa.ideal_cycles(m, n, k, p));
        }
    }

    /// Every tile→node ordering is a bijection onto the mesh — each cell
    /// visited exactly once — for arbitrary rectangular shapes (square,
    /// wide, tall), so no placement can drop or double-book a node.
    #[test]
    fn tile_orders_are_bijections_on_arbitrary_meshes(
        cols in 1u8..17,
        rows in 1u8..17,
    ) {
        let shape = MeshShape::new(cols, rows);
        for order in TileOrder::ALL {
            let cells = order.ordering(shape);
            prop_assert_eq!(cells.len(), shape.node_count());
            let mut seen = vec![false; shape.node_count()];
            for c in &cells {
                let i = usize::from(c.y) * usize::from(cols) + usize::from(c.x);
                prop_assert!(!seen[i], "{} visits ({}, {}) twice", order.name(), c.x, c.y);
                seen[i] = true;
            }
        }
    }

    /// On degenerate `1×N` / `N×1` meshes every space-filling curve
    /// reduces to row order — the identity assignment.
    #[test]
    fn degenerate_meshes_reduce_to_row_order(
        len in 1u8..33,
        tall in 0u64..2,
    ) {
        let shape = if tall == 1 {
            MeshShape::new(1, len)
        } else {
            MeshShape::new(len, 1)
        };
        let row = TileOrder::Row.ordering(shape);
        for order in [TileOrder::Morton, TileOrder::Hilbert] {
            prop_assert_eq!(order.ordering(shape), row.clone(), "{}", order.name());
        }
    }

    /// `TileOrder::Row` reproduces the historical `node_at` assignment
    /// bit for bit on every supported shape — the guarantee every pinned
    /// fingerprint rests on.
    #[test]
    fn row_order_is_the_historical_assignment(
        cols in 1u8..17,
        rows in 1u8..17,
        idx in 0usize..256,
    ) {
        let shape = MeshShape::new(cols, rows);
        let i = idx % shape.node_count();
        prop_assert_eq!(TileOrder::Row.position(shape, i), shape.node_at(i));
        prop_assert_eq!(TileOrder::Row.ordering(shape)[i], shape.node_at(i));
    }
}
