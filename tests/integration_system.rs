//! Cross-crate integration tests: the full MACO system exercised end to
//! end through the facade crate.

use maco::core::gemm_plus::GemmPlusTask;
use maco::core::node::ComputeNode;
use maco::core::runner::Maco;
use maco::core::system::{MacoSystem, SystemConfig};
use maco::cpu::kernels::Kernel;
use maco::isa::mtq::QueryOutcome;
use maco::isa::params::GemmParams;
use maco::isa::{Asid, ExceptionType, Precision};
use maco::mmae::systolic::reference_gemm;
use maco::sim::{SimDuration, SimTime};

/// The headline Fig. 6 property: predictive translation beats demand
/// translation at n ≥ 1024, and the gap collapses below 512.
#[test]
fn prediction_gap_has_fig6_shape() {
    let run = |n: u64, prediction: bool| {
        let mut cfg = SystemConfig::single_node();
        cfg.prediction = prediction;
        MacoSystem::new(cfg)
            .run_parallel_gemm(n, n, n, Precision::Fp64)
            .expect("mapped")
            .avg_efficiency()
    };
    let gap_small = run(256, true) - run(256, false);
    let gap_peak = run(1024, true) - run(1024, false);
    assert!(gap_peak > 0.04, "peak gap {gap_peak} too small");
    assert!(gap_small < 0.02, "small-size gap {gap_small} too large");
    assert!(gap_peak > 2.0 * gap_small, "gap must grow with size");
}

/// The headline Fig. 7 property: scaling to 16 nodes costs roughly 10 %
/// while staying near 90 % efficiency.
#[test]
fn sixteen_node_scaling_loses_about_ten_percent() {
    let n = 2048;
    let eff = |nodes: usize| {
        let cfg = SystemConfig {
            nodes,
            ..SystemConfig::default()
        };
        MacoSystem::new(cfg)
            .run_parallel_gemm(n, n, n, Precision::Fp64)
            .expect("mapped")
            .avg_efficiency()
    };
    let e1 = eff(1);
    let e16 = eff(16);
    let loss = e1 - e16;
    assert!((0.03..0.25).contains(&loss), "1→16 loss {loss}");
    assert!(e16 > 0.75, "16-node efficiency {e16}");
}

/// Functional correctness: the node's tiled SA execution equals a
/// reference GEMM.
#[test]
fn node_functional_gemm_matches_reference() {
    let node = ComputeNode::new(Asid::new(1));
    let (m, n, k) = (96, 80, 112);
    let a: Vec<f64> = (0..m * k)
        .map(|i| ((i * 37 % 23) as f64) / 7.0 - 1.0)
        .collect();
    let b: Vec<f64> = (0..k * n)
        .map(|i| ((i * 53 % 29) as f64) / 9.0 - 1.0)
        .collect();
    let c: Vec<f64> = (0..m * n).map(|i| ((i * 11 % 13) as f64) / 3.0).collect();
    let y = node.gemm_functional(&a, &b, &c, m, n, k, Precision::Fp64);
    let r = reference_gemm(&a, &b, &c, m, n, k);
    for (yi, ri) in y.iter().zip(&r) {
        assert!((yi - ri).abs() < 1e-9);
    }
}

/// The full MPAIS protocol across crates: clean task, exception task,
/// recycled entry.
#[test]
fn mpais_protocol_end_to_end() {
    let n = 128u64;
    let bytes = n * n * 8;
    let params = GemmParams::new(
        0x1000_0000,
        0x1000_0000 + bytes,
        0x1000_0000 + 2 * bytes,
        0x1000_0000 + 3 * bytes,
        n,
        n,
        n,
        Precision::Fp64,
    )
    .expect("valid");

    // Clean path.
    let mut node = ComputeNode::new(Asid::new(7));
    node.map(0x1000_0000, 4 * bytes).expect("fresh range");
    let (maid, report) = node.run_gemm(&params, SimTime::ZERO).expect("resources");
    assert!(report.is_some());
    assert_eq!(
        node.query_release(maid).expect("valid maid"),
        QueryOutcome::Done { exception: None }
    );

    // Exception path (nothing mapped).
    let mut bad = ComputeNode::new(Asid::new(8));
    let (maid, report) = bad.run_gemm(&params, SimTime::ZERO).expect("resources");
    assert!(report.is_none());
    assert_eq!(
        bad.query_release(maid).expect("valid maid"),
        QueryOutcome::Done {
            exception: Some(ExceptionType::TranslationFault)
        }
    );
    bad.clear(maid).expect("clear");
    assert_eq!(bad.cpu().mtq().in_use(), 0);
}

/// The GEMM⁺ mapping scheme helps: stash/lock + overlap beats the
/// unmapped, serial configuration (the Fig. 8 Baseline-2 relationship).
#[test]
fn mapping_scheme_beats_baseline2_configuration() {
    let task =
        GemmPlusTask::gemm(4096, 256, 1024, Precision::Fp32).with_epilogue(Kernel::softmax());

    let mut maco = Maco::builder().nodes(8).build();
    let mapped = maco.gemm_plus(&task).expect("mapped");

    let mut b2 = Maco::builder().nodes(8).stash_lock(false).build();
    let unmapped = b2
        .gemm_plus(&task.clone().without_overlap())
        .expect("mapped");

    assert!(
        mapped.elapsed < unmapped.elapsed,
        "mapping {} vs baseline-2 {}",
        mapped.elapsed,
        unmapped.elapsed
    );
}

/// Fig. 5(c): the CPU epilogue genuinely overlaps MMAE GEMM time.
#[test]
fn gemm_plus_timeline_overlaps() {
    let mut maco = Maco::builder().nodes(2).build();
    let task = GemmPlusTask::gemm(2048, 2048, 1024, Precision::Fp32).with_epilogue(Kernel::gelu());
    let report = maco.gemm_plus(&task).expect("mapped");
    for i in 0..2 {
        let overlap = report
            .timeline
            .overlap_between(&format!("CN{i}.MMAE"), &format!("CN{i}.CPU"));
        assert!(overlap > SimDuration::ZERO, "CN{i} shows no overlap");
    }
}

/// Multi-task streams run back to back without leaking MTQ/STQ entries.
#[test]
fn many_layers_do_not_leak_task_entries() {
    let mut maco = Maco::builder().nodes(4).build();
    let layers: Vec<GemmPlusTask> = (0..12)
        .map(|i| GemmPlusTask::gemm(512 + 64 * i, 512, 512, Precision::Fp32))
        .collect();
    let report = maco.dnn(&layers).expect("mapped");
    assert_eq!(report.layers, 12);
    assert!(report.gflops() > 0.0);
}

/// Precision changes peak and throughput coherently.
#[test]
fn precision_scales_throughput() {
    let mut machine = Maco::builder().nodes(1).build();
    let f64r = machine
        .parallel_gemm(1024, 1024, 1024, Precision::Fp64)
        .expect("mapped")
        .total_gflops();
    let f16r = machine
        .parallel_gemm(1024, 1024, 1024, Precision::Fp16)
        .expect("mapped")
        .total_gflops();
    let ratio = f16r / f64r;
    assert!(
        (2.5..4.5).contains(&ratio),
        "FP16 4-way SIMD should approach 4x FP64: {ratio}"
    );
}
