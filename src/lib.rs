//! # maco — reproduction of "MACO: Exploring GEMM Acceleration on a
//! Loosely-Coupled Multi-core Processor" (DATE 2024)
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`core`] — the MACO system: compute nodes, NoC, distributed
//!   L3, GEMM⁺ mapping, the high-level [`maco_core::runner::Maco`] builder.
//! * [`mmae`] — the matrix-multiplication acceleration engine.
//! * [`isa`] — the MPAIS instruction set and task queues.
//! * [`vm`] — page tables, TLBs and the mATLB predictor.
//! * [`mem`] — caches, MOESI directory, lockable L3, DRAM.
//! * [`noc`] — the 4×4 mesh network.
//! * [`cpu`] — the general-purpose core model.
//! * [`workloads`] — HPL sweeps, DNN GEMM streams and multi-tenant
//!   arrival traces.
//! * [`serve`] — the multi-tenant serving layer: admission, gang
//!   scheduling, virtual-time co-simulation, replica sharding.
//! * [`cluster`] — scale-out serving across a fleet of machines:
//!   placement policies, the inter-machine interconnect cost model,
//!   data-parallel GEMM splits and the global fleet timeline.
//! * [`baselines`] — the Fig. 8 comparators.
//! * [`explore`] — declarative design-space sweeps: `SweepGrid` →
//!   `Explorer` → Pareto frontiers, roofline gaps and the named
//!   Fig. 6/7/8 experiments.
//! * [`telemetry`] — the observability layer: the deterministic
//!   virtual-time tracer (Chrome `trace_event` export), mergeable log2
//!   latency histograms and wall-clock phase profiles.
//!
//! # Quickstart
//!
//! ```
//! use maco::core::runner::Maco;
//! use maco::isa::Precision;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut machine = Maco::builder().nodes(4).build();
//! let report = machine.gemm(1024, 1024, 1024, Precision::Fp32)?;
//! println!("{:.1} GFLOPS at {:.1}% efficiency",
//!     report.total_gflops(), report.avg_efficiency() * 100.0);
//! # Ok(())
//! # }
//! ```

pub use maco_baselines as baselines;
pub use maco_cluster as cluster;
pub use maco_core as core;
pub use maco_cpu as cpu;
pub use maco_explore as explore;
pub use maco_isa as isa;
pub use maco_mem as mem;
pub use maco_mmae as mmae;
pub use maco_noc as noc;
pub use maco_serve as serve;
pub use maco_sim as sim;
pub use maco_telemetry as telemetry;
pub use maco_vm as vm;
pub use maco_workloads as workloads;
