//! Communication-avoiding placement demo: the head-to-head placement
//! sweep at both scales — space-filling-curve tile→node orderings on a
//! partial mesh (NoC hop·flits) and `Placement::SfcLocality` against
//! the three classic fleet policies on the bandwidth-constrained fleet
//! (attributed interconnect bytes per job) — asserting the
//! communication-avoiding wins the test suite pins.
//!
//! ```sh
//! cargo run --release --example placement
//! ```

use maco::cluster::Placement;
use maco::explore::placement::placement_sweep;
use maco::workloads::trace::TraceConfig;

fn main() {
    let config = TraceConfig {
        requests: 48,
        ..TraceConfig::fleet(0xF1EE7)
    };
    let report = placement_sweep(4, &config);

    println!("mesh — tile→node ordering on 4 active nodes of a 4x4 mesh");
    println!(
        "{:>10} {:>14} {:>12} {:>12}",
        "order", "hop·flits", "noc bytes", "makespan"
    );
    for p in &report.mesh {
        println!(
            "{:>10} {:>14} {:>12} {:>12?}",
            p.order.name(),
            p.hop_flits,
            p.noc_bytes,
            p.makespan
        );
    }

    println!("\nfleet — placement policy on 8 bandwidth-constrained machines");
    println!(
        "{:>16} {:>16} {:>12} {:>8} {:>8}",
        "policy", "bytes/job", "wire bytes", "migr", "splits"
    );
    for p in &report.fleet {
        println!(
            "{:>16} {:>16.1} {:>12} {:>8} {:>8}",
            p.placement.name(),
            p.bytes_per_job,
            p.wire_bytes,
            p.migrations,
            p.splits
        );
    }

    // The headline claims, re-asserted on the demo's own numbers.
    report.assert_communication_avoiding();
    let sfc = report
        .bytes_per_job_of(Placement::SfcLocality)
        .expect("swept");
    let worst = report
        .fleet
        .iter()
        .map(|p| p.bytes_per_job)
        .fold(0.0f64, f64::max);
    println!(
        "\nSfcLocality attributes {:.1}% fewer bytes/job than the worst classic policy",
        (1.0 - sfc / worst) * 100.0
    );
    println!("sweep fingerprint: {:016x}", report.fingerprint);
}
