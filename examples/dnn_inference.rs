//! DNN inference: run ResNet-50 and BERT GEMM streams through a full
//! 16-node MACO with GEMM⁺ epilogue overlap — the workload family of the
//! paper's Fig. 8.
//!
//! ```sh
//! cargo run --release --example dnn_inference
//! ```

use maco::baselines::no_mapping::epilogue_kernel;
use maco::core::gemm_plus::GemmPlusTask;
use maco::core::runner::Maco;
use maco::isa::Precision;
use maco::workloads::bert::{bert, BertConfig};
use maco::workloads::resnet::resnet50;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut machine = Maco::builder().nodes(16).lanes_override(1).build();

    for model in [resnet50(4), bert(BertConfig::base(1, 256))] {
        let layers: Vec<GemmPlusTask> = model
            .unrolled()
            .into_iter()
            .map(|l| {
                let mut task = GemmPlusTask::gemm(l.shape.m, l.shape.n, l.shape.k, Precision::Fp32);
                if let Some(k) = epilogue_kernel(l.epilogue) {
                    task = task.with_epilogue(k);
                }
                task
            })
            .collect();
        let report = machine.dnn(&layers)?;
        println!(
            "{:<10} {:3} GEMM layers, {:6.2} GFLOPs total -> {:7.1} GFLOPS ({:.2} ms)",
            model.name,
            report.layers,
            report.flops as f64 / 1e9,
            report.gflops(),
            report.elapsed.as_us() / 1000.0
        );
    }
    Ok(())
}
