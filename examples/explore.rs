//! Design-space exploration demo: reproduces Fig. 6, Fig. 7 and Fig. 8 as
//! named `maco-explore` experiments (asserting the seed test suite's
//! headline properties on each), then runs a custom sweep over nodes ×
//! CCM bandwidth × prediction, prints its Pareto frontier and roofline
//! gaps, and writes the JSON/CSV reports.
//!
//! ```sh
//! cargo run --release --example explore            # quick axes
//! MACO_FULL=1 cargo run --release --example explore # the paper's full axes
//! ```

use maco::explore::{figures, Explorer, SweepGrid};

fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let quick = std::env::var("MACO_FULL").is_err();

    // --- Fig. 6: prediction on/off on one node -------------------------
    println!("fig6 — single-node efficiency with/without prediction (FP64)");
    println!("{:>8} {:>8} {:>10} {:>7}", "size", "with", "without", "gap");
    let fig6 = figures::fig6(quick);
    for row in &fig6 {
        println!(
            "{:>8} {:>8} {:>10} {:>7}",
            row.size,
            pct(row.with_prediction),
            pct(row.without_prediction),
            pct(row.gap())
        );
    }
    // The seed suite's Fig. 6 property, re-asserted on the named experiment.
    let gap_at = |size: u64| fig6.iter().find(|r| r.size == size).expect("swept").gap();
    assert!(gap_at(1024) > 0.04, "Fig. 6 peak gap lost");
    assert!(gap_at(256) < 0.02, "Fig. 6 small-size gap out of shape");

    // --- Fig. 7: node scaling ------------------------------------------
    println!("\nfig7 — avg per-node efficiency vs node count (FP64)");
    let fig7 = figures::fig7(quick);
    print!("{:>8}", "size");
    for c in &fig7.node_counts {
        print!("{:>8}", format!("{c}-node"));
    }
    println!();
    for row in &fig7.rows {
        print!("{:>8}", row.size);
        for eff in &row.efficiency {
            print!("{:>8}", pct(*eff));
        }
        println!();
    }
    println!("avg 1→16 scaling loss: {}", pct(fig7.avg_scaling_loss()));
    let at_2048 = fig7
        .rows
        .iter()
        .find(|r| r.size == 2048)
        .expect("2048 swept");
    let loss = at_2048.efficiency[0] - at_2048.efficiency.last().unwrap();
    assert!((0.03..0.25).contains(&loss), "Fig. 7 scaling loss {loss}");

    // --- Fig. 8: DNN throughput vs the comparators ---------------------
    println!("\nfig8 — DNN throughput in GFLOPS (FP32, 16x16 PEs)");
    let fig8 = figures::fig8(quick);
    print!("{:>26}", "system");
    for m in &fig8.models {
        print!("{m:>12}");
    }
    println!();
    for (name, vals) in &fig8.rows {
        print!("{name:>26}");
        for v in vals {
            print!("{v:>12.0}");
        }
        println!();
    }
    for comparator in ["Baseline-1", "Baseline-2", "Gem5-RASA", "Gemmini"] {
        let speedup = fig8.maco_speedup_over(comparator);
        println!("  MACO vs {comparator:<12} {speedup:.2}x");
        assert!(speedup > 1.0, "MACO must beat {comparator}");
    }

    // --- A custom sweep: nodes × CCM bandwidth × prediction ------------
    let grid = SweepGrid {
        nodes: vec![1, 4, 16],
        sizes: vec![if quick { 1024 } else { 4096 }],
        ccm_gbps: vec![10.0, 20.0, 40.0],
        prediction: vec![true, false],
        ..SweepGrid::default()
    };
    println!(
        "\ncustom sweep: {} points (nodes x ccm_gbps x prediction), 4 threads",
        grid.len()
    );
    let report = Explorer::new().threads(4).run(&grid);
    println!(
        "{:>6} {:>6} {:>9} {:>6} {:>9} {:>8} {:>9}",
        "nodes", "ccm", "pred", "eff", "gflops", "roofline", "gap"
    );
    let frontier = report.pareto_frontier();
    for (i, p) in report.points.iter().enumerate() {
        let mark = if frontier.contains(&i) { " *" } else { "" };
        println!(
            "{:>6} {:>6} {:>9} {:>6} {:>9.1} {:>8.1} {:>9}{mark}",
            p.point.nodes,
            p.point.ccm_gbps,
            p.point.prediction,
            pct(p.efficiency),
            p.gflops,
            p.roofline.predicted_gflops(),
            pct(p.roofline_gap()),
        );
    }
    println!("(* = Pareto frontier: gflops ↑, efficiency ↑, nodes ↓)");
    println!("sweep fingerprint: {}", report.fingerprint_hex());

    let out_dir = std::path::Path::new("target").join("explore");
    std::fs::create_dir_all(&out_dir)?;
    report.write_json(out_dir.join("sweep.json"))?;
    report.write_csv(out_dir.join("sweep.csv"))?;
    println!(
        "reports written to {}/sweep.{{json,csv}}",
        out_dir.display()
    );
    Ok(())
}
