//! Fleet serving demo: the dense single-layer BERT / GPT-3 / ResNet burst
//! served by one 16-node machine and by fleets of 2×8 and 4×4 machines of
//! the same per-node hardware, at the bandwidth-constrained uncore design
//! point. The scale-out curve shows the fleet's replicated CCM/DRAM and
//! the data-parallel k-split beating the single chip at equal total node
//! count — and the placement policies trading migration traffic against
//! balance.
//!
//! ```sh
//! cargo run --release --example cluster
//! ```

use maco::cluster::{Cluster, ClusterSpec, Placement};
use maco::explore::scaling::cluster_scaling;
use maco::serve::Tenant;
use maco::workloads::trace::{self, TraceConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace_config = TraceConfig::fleet(2026);
    let trace = trace::generate(&trace_config);
    let tenants = Tenant::fleet(trace_config.tenants);
    println!(
        "maco-cluster demo: {} requests, {} tenants, 16 total nodes",
        trace.len(),
        tenants.len()
    );
    println!("{}", "=".repeat(76));

    // The scale-out curve at constant node budget.
    let sweep = cluster_scaling(&[1, 2, 4], 16, &trace_config, |machines, nodes| {
        ClusterSpec::bandwidth_constrained(machines, nodes)
    });
    for p in &sweep.points {
        println!(
            "{}x{:<2} machines: {:>7.1} GFLOPS  makespan {:>8.1} ms  splits {:>2}  \
             interconnect {:>6.1} MB  fingerprint {:016x}",
            p.machines,
            p.nodes_per_machine,
            p.gflops,
            p.makespan.as_us() / 1e3,
            p.splits,
            p.interconnect_bytes as f64 / 1e6,
            p.fingerprint,
        );
    }
    let speedup = sweep.speedup_at(4).expect("both shapes swept");
    println!("scale-out speedup 4x4 over 1x16: {speedup:.2}x");
    assert!(speedup >= 2.0, "the acceptance scenario holds");

    // Placement policies on the 4-machine fleet.
    println!("{}", "=".repeat(76));
    for placement in Placement::ALL {
        let spec = ClusterSpec::bandwidth_constrained(4, 4).with_placement(placement);
        let mut fleet = Cluster::new(spec, tenants.clone());
        let report = fleet.run_trace(&trace)?;
        println!(
            "placement {:<15} {:>7.1} GFLOPS  mean latency {:>8.1} ms  migrations {:>2}  \
             fairness {:.3}",
            placement.name(),
            report.total_gflops(),
            report.mean_latency().as_us() / 1e3,
            report.migrations,
            report.fairness(),
        );
        for m in &report.machines {
            println!(
                "  {:<4} {:>2} nodes  jobs {:>2}  {:>7.1} GFLOPS share  peak MTQ {}",
                m.name,
                m.nodes,
                m.serve.jobs_completed,
                m.gflops_over(report.makespan),
                m.serve.machine_peak_mtq,
            );
        }
        // Same seed, same fleet schedule — byte for byte.
        let again = fleet.run_trace(&trace)?;
        assert_eq!(report.fingerprint, again.fingerprint);
    }
    Ok(())
}
