//! Observability demo: run the failover storm with the telemetry sink
//! attached, prove tracing never perturbs simulated outcomes, export the
//! recorded timeline as Chrome `trace_event` JSON and validate the export
//! by parsing it back (structure, event counts, per-track timestamp
//! monotonicity). Load the written file in chrome://tracing or Perfetto
//! to see one process track per machine (plus the router) with fault,
//! eviction and re-placement events on the machines they happened on.
//!
//! ```sh
//! cargo run --release --example trace
//! ```

use maco::cluster::{Cluster, ClusterSpec, FaultSpec, TraceSink};
use maco::serve::Tenant;
use maco::sim::{SimDuration, SimTime};
use maco::telemetry::{validate_chrome_json, ROUTER_TRACK};
use maco::workloads::trace::{self, TraceConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace_config = TraceConfig::failover(2026);
    let requests = trace::generate(&trace_config);
    let tenants = Tenant::fleet(trace_config.tenants);

    // Two mid-burst kills: machine 1 dies for good, machine 2 suffers a
    // 100 us outage and rejoins.
    let span_us = 5 * trace_config.requests as u64;
    let kill_1 = SimTime::ZERO + SimDuration::from_us(span_us / 4);
    let kill_2 = SimTime::ZERO + SimDuration::from_us(span_us / 2);
    let faults = FaultSpec::none()
        .with_failure(1, kill_1, None)
        .with_failure(2, kill_2, Some(kill_2 + SimDuration::from_us(100)));
    let spec = ClusterSpec::bandwidth_constrained(4, 4).with_faults(faults);

    // Reference run with the sink off, then the same episode traced.
    let mut plain = Cluster::new(spec.clone(), tenants.clone());
    let reference = plain.run_trace(&requests)?;

    let sink = TraceSink::on();
    let mut fleet = Cluster::new(spec, tenants);
    fleet.set_trace_sink(sink.clone());
    let report = fleet.run_trace(&requests)?;
    assert_eq!(
        report.fingerprint, reference.fingerprint,
        "tracing perturbed the schedule"
    );
    assert_eq!(
        report.fault.fingerprint, reference.fault.fingerprint,
        "tracing perturbed the fault timeline"
    );
    assert_eq!(report.fault.jobs_lost, 0);

    let recorded = sink.drain().expect("sink is on");
    println!(
        "maco trace demo: {} requests, {} machines, {} records (fingerprint {})",
        requests.len(),
        fleet.machines(),
        recorded.len(),
        recorded.fingerprint_hex(),
    );
    assert_eq!(recorded.dropped, 0, "default ring must hold this scenario");

    // The fault events must sit on the tracks of the machines that
    // failed; every re-placement lands on a survivor (machine 1 is dead
    // from its kill onwards and can never be a re-placement target).
    let on = |name: &str, track: u32| {
        recorded
            .records
            .iter()
            .filter(|r| r.name == name && r.track == track)
            .count()
    };
    assert_eq!(on("fault/fail", 1), 1, "machine 1 records its kill");
    assert_eq!(on("fault/fail", 2), 1, "machine 2 records its kill");
    assert_eq!(on("fault/recover", 2), 1, "machine 2 records its recovery");
    assert!(
        on("job/evict", 1) + on("job/evict", 2) > 0,
        "kills mid-burst must evict work"
    );
    let replaces: Vec<u32> = recorded
        .records
        .iter()
        .filter(|r| r.name == "replace")
        .map(|r| r.track)
        .collect();
    assert!(!replaces.is_empty(), "evicted work must be re-placed");
    assert!(
        replaces.iter().all(|&t| t != 1),
        "the permanently dead machine can never receive a re-placement"
    );
    assert!(
        recorded
            .records
            .iter()
            .any(|r| r.name == "route" && r.track == ROUTER_TRACK),
        "router decisions live on the router track"
    );
    println!(
        "  fault/evict/replace events on the right tracks ({} evictions, {} re-placements)",
        on("job/evict", 1) + on("job/evict", 2),
        replaces.len(),
    );

    // Export, then prove the export well-formed by parsing it back.
    let json = recorded.to_chrome_json(&fleet.track_labels());
    let summary = validate_chrome_json(&json)?;
    assert_eq!(
        summary.events(),
        recorded.len(),
        "every retained record exports exactly once"
    );
    // 4 machines + the router, all present in the export.
    assert_eq!(summary.tracks, 5);
    println!(
        "  chrome export: {} spans, {} instants, {} metadata rows, {} tracks — valid",
        summary.spans, summary.instants, summary.metadata, summary.tracks,
    );

    let path = std::env::temp_dir().join("maco_trace_failover.json");
    std::fs::write(&path, &json)?;
    println!(
        "  wrote {} ({} bytes) — open in chrome://tracing or ui.perfetto.dev",
        path.display(),
        json.len(),
    );
    Ok(())
}
