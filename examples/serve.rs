//! Multi-tenant serving demo: eight tenants submit a mixed
//! BERT / GPT-3 / ResNet request stream to a 16-node machine; the gang
//! scheduler space-shares the mesh under each policy, and a threaded
//! replica run shards the same trace across OS threads for wall-clock
//! throughput.
//!
//! ```sh
//! cargo run --release --example serve
//! ```

use maco::core::system::SystemConfig;
use maco::core::MacoSystem;
use maco::serve::{run_replicas, Policy, ServeConfig, Server, Tenant};
use maco::workloads::trace::{self, TraceConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace_config = TraceConfig {
        seed: 2024,
        tenants: 8,
        requests: 16,
        layer_cap: 2,
        ..TraceConfig::default()
    };
    let trace = trace::generate(&trace_config);
    let system = SystemConfig::default(); // 16 nodes
    let tenants = Tenant::fleet(trace_config.tenants);

    println!(
        "maco-serve demo: 16 nodes, 8 tenants, {} requests",
        trace.len()
    );
    println!("{}", "=".repeat(72));

    for policy in Policy::ALL {
        let mut server = Server::new(
            MacoSystem::new(system.clone()),
            tenants.clone(),
            ServeConfig::with_policy(policy),
        );
        let report = server.run_trace(&trace)?;
        println!(
            "policy {:<11} jobs {:>2}  makespan {:>9.1} us  {:>7.1} GFLOPS  \
             fairness {:.3}  fingerprint {}",
            policy.name(),
            report.jobs_completed,
            report.makespan.as_us(),
            report.total_gflops(),
            report.fairness(),
            report.fingerprint_hex(),
        );
        for t in report.tenants.iter().filter(|t| t.submitted > 0) {
            println!(
                "  {:<9} jobs {}/{}  mean latency {:>9.1} us  max {:>9.1} us  \
                 misses {}  peak MTQ {}",
                t.name,
                t.completed,
                t.submitted,
                t.mean_latency().as_us(),
                t.latency_max.as_us(),
                t.deadline_misses,
                t.peak_mtq,
            );
        }
    }

    // Replica sharding: the same trace load-balanced across threads.
    println!("{}", "=".repeat(72));
    for threads in [1usize, 4] {
        let shards = trace::shard_balanced(&trace, threads);
        let outcome = run_replicas(&system, &tenants, &ServeConfig::default(), &shards)?;
        println!(
            "replicas x{threads}: {} jobs in {:>7.1} ms wall, combined fingerprint {:016x}",
            outcome.jobs_completed(),
            outcome.wall.as_secs_f64() * 1e3,
            outcome.fingerprint,
        );
    }
    Ok(())
}
