//! Multi-process task management: two processes share one compute node's
//! MMAE through the MTQ/STQ protocol, including the Fig. 3 exception path.
//!
//! ```sh
//! cargo run --release --example multiprocess
//! ```

use maco::core::node::ComputeNode;
use maco::isa::mtq::QueryOutcome;
use maco::isa::params::GemmParams;
use maco::isa::{Asid, Precision};
use maco::sim::SimTime;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("MPAIS multi-process demo (Fig. 3 protocol)");
    println!("-------------------------------------------");

    // Process A: a well-formed task on a node with mapped matrices.
    let mut node = ComputeNode::new(Asid::new(1));
    let n = 256u64;
    node.map(0x1000_0000, 4 * n * n * 8)?;
    let bytes = n * n * 8;
    let params = GemmParams::new(
        0x1000_0000,
        0x1000_0000 + bytes,
        0x1000_0000 + 2 * bytes,
        0x1000_0000 + 3 * bytes,
        n,
        n,
        n,
        Precision::Fp64,
    )?;
    let (maid, report) = node.run_gemm(&params, SimTime::ZERO)?;
    let report = report.expect("clean completion");
    println!(
        "process A: {maid} completed at {:.1} GFLOPS ({:.1}% efficiency)",
        report.gflops(),
        report.efficiency() * 100.0
    );
    println!("           MA_STATE -> {:?}", node.query_release(maid)?);

    // Process B: an unmapped task — the MMAE raises a translation fault,
    // the MTQ entry holds the exception until MA_CLEAR.
    let mut node_b = ComputeNode::new(Asid::new(2));
    let (maid_b, report_b) = node_b.run_gemm(&params, SimTime::ZERO)?;
    assert!(report_b.is_none());
    let outcome = node_b.query_release(maid_b)?;
    println!("process B: {maid_b} -> {outcome:?}");
    if let QueryOutcome::Done { exception: Some(e) } = outcome {
        println!("           exception: {e}; issuing MA_CLEAR");
        node_b.clear(maid_b)?;
    }
    println!(
        "           MTQ entries in use: {}",
        node_b.cpu().mtq().in_use()
    );
    Ok(())
}
