//! Quickstart: build a MACO machine, run a GEMM, inspect the report.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use maco::core::runner::Maco;
use maco::isa::Precision;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A four-node MACO with the paper's defaults: predictive address
    // translation and the stash-and-lock mapping scheme enabled.
    let mut machine = Maco::builder().nodes(4).build();

    // One logical 2048^3 FP32 GEMM, partitioned across the nodes per the
    // paper's Fig. 5(a) mapping.
    let report = machine.gemm(2048, 2048, 2048, Precision::Fp32)?;

    println!("MACO quickstart — 2048^3 FP32 GEMM on 4 compute nodes");
    println!("------------------------------------------------------");
    for node in &report.nodes {
        println!(
            "  node {}: {:7.1} GFLOPS  ({:4.1}% of the engine's peak)",
            node.node,
            node.gflops(),
            node.efficiency() * 100.0
        );
    }
    println!(
        "  system: {:7.1} GFLOPS over {:.2} ms",
        report.total_gflops(),
        report.makespan.as_us() / 1000.0
    );
    Ok(())
}
