//! GEMM⁺ pipeline: the Fig. 5 mapping — stash & lock plus CPU/MMAE overlap
//! — versus the serial alternative, with the resulting timeline.
//!
//! ```sh
//! cargo run --release --example gemm_plus_pipeline
//! ```

use maco::core::gemm_plus::GemmPlusTask;
use maco::core::runner::Maco;
use maco::cpu::kernels::Kernel;
use maco::isa::Precision;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let task =
        GemmPlusTask::gemm(4096, 4096, 2048, Precision::Fp32).with_epilogue(Kernel::softmax());

    let mut overlapped = Maco::builder().nodes(4).build();
    let fast = overlapped.gemm_plus(&task)?;

    let mut serial_machine = Maco::builder().nodes(4).build();
    let slow = serial_machine.gemm_plus(&task.clone().without_overlap())?;

    println!("GEMM+ layer (4096x4096x2048 FP32 + softmax) on 4 nodes");
    println!("--------------------------------------------------------");
    println!(
        "overlapped (Fig. 5c): {:8.2} ms",
        fast.elapsed.as_us() / 1000.0
    );
    println!(
        "serial baseline     : {:8.2} ms",
        slow.elapsed.as_us() / 1000.0
    );
    println!();
    println!("{}", fast.timeline.render_ascii(64));
    Ok(())
}
