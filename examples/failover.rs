//! Failure and elasticity demo: the failure-storm burst served by a
//! 4-machine fleet while machines fail-stop mid-burst, an interconnect
//! degradation window slows re-placement, and the autoscaler grows the
//! active set back under pressure. Every run ends with zero lost jobs —
//! the failover path re-places evicted work on survivors (DNN streams
//! restart from their last completed layer; k-splits resume
//! mid-reduction, bit-identical to the unfailed numerics) instead of
//! dropping it — and the overprovisioning sweep quantifies what spare
//! machines buy in availability.
//!
//! ```sh
//! cargo run --release --example failover
//! ```

use maco::cluster::{AutoscalerSpec, Cluster, ClusterSpec, DegradationWindow, FaultSpec};
use maco::explore::elasticity::availability_sweep;
use maco::serve::Tenant;
use maco::sim::{SimDuration, SimTime};
use maco::workloads::trace::{self, TraceConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace_config = TraceConfig::failover(2026);
    let trace = trace::generate(&trace_config);
    let tenants = Tenant::fleet(trace_config.tenants);
    println!(
        "maco failover demo: {} requests, {} tenants, 4x4-node fleet",
        trace.len(),
        tenants.len()
    );
    println!("{}", "=".repeat(76));

    // The healthy fleet sets the reference makespan.
    let mut healthy = Cluster::new(ClusterSpec::bandwidth_constrained(4, 4), tenants.clone());
    let base = healthy.run_trace(&trace)?;
    println!(
        "healthy fleet:  {:>7.1} GFLOPS  makespan {:>8.1} us  fingerprint {}",
        base.total_gflops(),
        base.makespan.as_us(),
        base.fingerprint_hex(),
    );

    // Two mid-burst kills (one permanent, one 100 us outage) plus a
    // degradation window taxing the re-placement traffic.
    let kill_1 = SimTime::ZERO + base.makespan / 4;
    let kill_2 = SimTime::ZERO + base.makespan / 2;
    let faults = FaultSpec::none()
        .with_failure(1, kill_1, None)
        .with_failure(2, kill_2, Some(kill_2 + SimDuration::from_us(100)))
        .with_degradation(DegradationWindow {
            from: kill_1,
            until: kill_2,
            latency_mult: 2,
            bandwidth_div: 2,
        });
    let spec = ClusterSpec::bandwidth_constrained(4, 4).with_faults(faults);
    let mut fleet = Cluster::new(spec, tenants.clone());
    let report = fleet.run_trace(&trace)?;
    assert_eq!(report.fault.jobs_lost, 0, "failover never drops a job");
    println!(
        "stormed fleet:  {:>7.1} GFLOPS  makespan {:>8.1} us  fingerprint {}",
        report.total_gflops(),
        report.makespan.as_us(),
        report.fingerprint_hex(),
    );
    println!(
        "  {} failures, {} recovery, {} jobs re-placed ({:.1} KB moved), \
         availability {:.1}%, worst recovery latency {:.1} us",
        report.fault.failures,
        report.fault.recoveries,
        report.fault.jobs_replaced,
        report.fault.replaced_bytes as f64 / 1e3,
        report.fault.availability * 100.0,
        report.fault.recovery_latency_max.as_us(),
    );
    // Same seed, same storm — byte for byte, fault timeline included.
    let again = fleet.run_trace(&trace)?;
    assert_eq!(report.fingerprint, again.fingerprint);
    assert_eq!(report.fault.fingerprint, again.fault.fingerprint);

    // The autoscaler rides the same storm with standbys in reserve.
    println!("{}", "=".repeat(76));
    let storm = FaultSpec::none().with_failure(0, kill_1, None);
    let spec = ClusterSpec::bandwidth_constrained(4, 4)
        .with_faults(storm)
        .with_autoscaler(AutoscalerSpec::conservative(1));
    let mut elastic = Cluster::new(spec, tenants.clone());
    let r = elastic.run_trace(&trace)?;
    assert_eq!(r.fault.jobs_lost, 0);
    println!(
        "autoscaled fleet: peak {} active machines, {} scale events, \
         {} deadline misses, {:>7.1} GFLOPS goodput",
        r.fault.peak_active,
        r.fault.scale_events.len(),
        r.fault.deadline_misses,
        r.goodput_gflops(),
    );

    // What do spares buy? The overprovisioning sweep.
    println!("{}", "=".repeat(76));
    let sweep_trace = TraceConfig {
        requests: 16,
        ..trace_config
    };
    let sweep = availability_sweep(2, &[0, 1, 2], 1, 2026, None, &sweep_trace, |m| {
        ClusterSpec::bandwidth_constrained(m, 4)
    });
    for p in &sweep.points {
        println!(
            "{} spare(s): availability {:.1}%  goodput {:>7.1} GFLOPS  \
             makespan {:>8.1} us  {} re-placed",
            p.spares,
            p.availability * 100.0,
            p.goodput_gflops,
            p.makespan.as_us(),
            p.jobs_replaced,
        );
    }
    Ok(())
}
